let src = Logs.Src.create "agingfp.presolve" ~doc:"MILP presolve"

module Log = (val Logs.src_log src : Logs.LOG)
module Invariant = Agingfp_util.Invariant

(* ---------- per-rule bookkeeping ---------- *)

type rule_stats = {
  applications : int;
  rows_touched : int;
  vars_touched : int;
  coeffs_touched : int;
}

let no_rule_stats =
  { applications = 0; rows_touched = 0; vars_touched = 0; coeffs_touched = 0 }

let add_rule_stats a b =
  {
    applications = a.applications + b.applications;
    rows_touched = a.rows_touched + b.rows_touched;
    vars_touched = a.vars_touched + b.vars_touched;
    coeffs_touched = a.coeffs_touched + b.coeffs_touched;
  }

(* Stable rule order: structural row rules first, then the rewriting
   rules, then the relaxation-tightening and integer rules — also the
   execution order of one fixpoint round. *)
let rule_names =
  [
    "empty_row";
    "singleton_row";
    "redundant_row";
    "forcing_row";
    "bound_tighten";
    "synonym_subst";
    "free_col_subst";
    "coef_strengthen";
    "clique_reduce";
    "probe";
  ]

type reductions = {
  rounds : int;
  rows_removed : int;
  singleton_rows : int;
  vars_fixed : int;
  vars_substituted : int;
  bounds_tightened : int;
  coeffs_strengthened : int;
  probe_fixings : int;
  nnz_removed : int;
  nnz_fillin : int;
  per_rule : (string * rule_stats) list;
}

let no_reductions =
  {
    rounds = 0;
    rows_removed = 0;
    singleton_rows = 0;
    vars_fixed = 0;
    vars_substituted = 0;
    bounds_tightened = 0;
    coeffs_strengthened = 0;
    probe_fixings = 0;
    nnz_removed = 0;
    nnz_fillin = 0;
    per_rule = [];
  }

let add_reductions a b =
  let per_rule =
    List.filter_map
      (fun name ->
        let get r = List.assoc_opt name r.per_rule in
        match (get a, get b) with
        | None, None -> None
        | Some s, None | None, Some s -> Some (name, s)
        | Some s, Some s' -> Some (name, add_rule_stats s s'))
      rule_names
  in
  {
    rounds = a.rounds + b.rounds;
    rows_removed = a.rows_removed + b.rows_removed;
    singleton_rows = a.singleton_rows + b.singleton_rows;
    vars_fixed = a.vars_fixed + b.vars_fixed;
    vars_substituted = a.vars_substituted + b.vars_substituted;
    bounds_tightened = a.bounds_tightened + b.bounds_tightened;
    coeffs_strengthened = a.coeffs_strengthened + b.coeffs_strengthened;
    probe_fixings = a.probe_fixings + b.probe_fixings;
    nnz_removed = a.nnz_removed + b.nnz_removed;
    nnz_fillin = a.nnz_fillin + b.nnz_fillin;
    per_rule;
  }

let pp_reductions ppf r =
  Format.fprintf ppf
    "%d rounds: %d rows removed, %d vars fixed, %d substituted, %d bounds \
     tightened, %d coeffs strengthened, %d probe fixings, %d nnz removed, %d nnz \
     fill-in"
    r.rounds r.rows_removed r.vars_fixed r.vars_substituted r.bounds_tightened
    r.coeffs_strengthened r.probe_fixings r.nnz_removed r.nnz_fillin

let pp_per_rule ppf r =
  let fired = List.filter (fun (_, s) -> s.applications > 0) r.per_rule in
  if fired = [] then Format.pp_print_string ppf "(no rule fired)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
      (fun ppf (name, s) ->
        Format.fprintf ppf "%-16s %5d applications, %4d rows, %4d vars, %4d coeffs"
          name s.applications s.rows_touched s.vars_touched s.coeffs_touched)
      ppf fired

(* ---------- postsolve transforms ---------- *)

(* A recorded rewriting, pushed newest-first. [Affine (v, k, terms)]
   reconstructs [x_v = k + sum c_u x_u]; every [u] was live when the
   transform was pushed, so replaying the stack newest-first always
   evaluates right-hand sides whose variables are already known. *)
type xform = Affine of int * float * (int * float) list

type t = {
  reduced_model : Model.t;
  var_map : int array; (* original var -> reduced var, or -1 if eliminated *)
  fixval : float array;
  stack : xform list; (* newest first *)
  n_orig : int;
  stats : reductions;
}

type outcome = Reduced of t | Proven_infeasible of string

let reduced t = t.reduced_model
let reductions t = t.stats
let num_orig_vars t = t.n_orig

let reduced_var t v =
  let j = t.var_map.(v) in
  if j < 0 then None else Some j

let postsolve t values =
  let out = Array.make t.n_orig 0.0 in
  for v = 0 to t.n_orig - 1 do
    let j = t.var_map.(v) in
    out.(v) <- (if j >= 0 then values.(j) else t.fixval.(v))
  done;
  List.iter
    (function
      | Affine (v, k, terms) ->
        out.(v) <-
          List.fold_left (fun acc (u, c) -> acc +. (c *. out.(u))) k terms)
    t.stack;
  out

exception Infeas of string

(* All thresholds: [feas_tol] guards infeasibility / redundancy
   declarations (conservative), [eps] recognizes exact structure
   (forcing rows, unit coefficients), [drop_tol] discards numerically
   cancelled coefficients created by substitutions. *)
let feas_tol = 1e-7
let eps = 1e-9
let drop_tol = 1e-11

(* Substituting a variable that lives in too many rows trades row
   count for fill; past this cap the rewrite stops paying for
   itself. *)
let max_subst_rows = 32

let run ?(budget = Agingfp_util.Budget.unlimited) ?(integrality_tol = 1e-9)
    ?(max_rounds = 10) model =
  let n = Model.num_vars model in
  let m = Model.num_constraints model in
  let lb = Array.init n (Model.var_lb model) in
  let ub = Array.init n (Model.var_ub model) in
  let kind = Array.init n (Model.var_kind model) in
  let live_var = Array.make n true in
  let fixval = Array.make n 0.0 in
  let row_terms = Array.make (max m 1) [] in
  let row_rel = Array.make (max m 1) Model.Le in
  let row_rhs = Array.make (max m 1) 0.0 in
  let row_live = Array.make (max m 1) true in
  let var_rows = Array.make (max n 1) [] in
  (* [var_rows] is a superset hint: rows are appended on fill-in and
     never retracted, so every consumer re-checks [row_live] and the
     term's actual presence. *)
  let orig_nnz = ref 0 in
  Model.iter_constraints model (fun i lhs rel rhs ->
      row_terms.(i) <- Expr.terms lhs;
      row_rel.(i) <- rel;
      row_rhs.(i) <- rhs;
      orig_nnz := !orig_nnz + List.length (Expr.terms lhs);
      List.iter (fun (v, _) -> var_rows.(v) <- i :: var_rows.(v)) (Expr.terms lhs));
  (* The working objective: substitutions rewrite it in place, exactly
     as they rewrite rows. *)
  let dir, obj0 = Model.objective model in
  let obj_coef = Array.make n 0.0 in
  let obj_const = ref (Expr.constant obj0) in
  List.iter (fun (v, c) -> obj_coef.(v) <- c) (Expr.terms obj0);
  let stack = ref [] in

  (* Aggregate counters (kept for API compatibility) plus the per-rule
     table. *)
  let rows_removed = ref 0 in
  let singleton_rows = ref 0 in
  let vars_fixed = ref 0 in
  let vars_substituted = ref 0 in
  let bounds_tightened = ref 0 in
  let coeffs_strengthened = ref 0 in
  let probe_fixings = ref 0 in
  let changed = ref false in
  let nrules = List.length rule_names in
  let rule_index name =
    let rec go i = function
      | [] -> Invariant.invalid ~where:"Presolve" "unknown rule %s" name
      | r :: _ when r = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 rule_names
  in
  let r_apps = Array.make nrules 0
  and r_rows = Array.make nrules 0
  and r_vars = Array.make nrules 0
  and r_coeffs = Array.make nrules 0 in
  let touch rule ?(rows = 0) ?(vars = 0) ?(coeffs = 0) () =
    r_apps.(rule) <- r_apps.(rule) + 1;
    r_rows.(rule) <- r_rows.(rule) + rows;
    r_vars.(rule) <- r_vars.(rule) + vars;
    r_coeffs.(rule) <- r_coeffs.(rule) + coeffs
  in
  let rl_empty = rule_index "empty_row"
  and rl_singleton = rule_index "singleton_row"
  and rl_redundant = rule_index "redundant_row"
  and rl_forcing = rule_index "forcing_row"
  and rl_bound = rule_index "bound_tighten"
  and rl_synonym = rule_index "synonym_subst"
  and rl_freecol = rule_index "free_col_subst"
  and rl_coef = rule_index "coef_strengthen"
  and rl_clique = rule_index "clique_reduce"
  and rl_probe = rule_index "probe" in

  (* Minimum activity of [terms] under current bounds: finite part +
     count of infinite contributions (the standard trick to keep
     per-variable residuals O(1)). *)
  let min_activity terms =
    List.fold_left
      (fun (s, k) (v, c) ->
        let contrib = if c > 0.0 then c *. lb.(v) else c *. ub.(v) in
        if Float.equal contrib neg_infinity then (s, k + 1) else (s +. contrib, k))
      (0.0, 0) terms
  in
  let max_activity terms =
    List.fold_left
      (fun (s, k) (v, c) ->
        let contrib = if c > 0.0 then c *. ub.(v) else c *. lb.(v) in
        if Float.equal contrib infinity then (s, k + 1) else (s +. contrib, k))
      (0.0, 0) terms
  in
  let round_integer_bounds v =
    if kind.(v) = Model.Integer then begin
      let lo = ceil (lb.(v) -. integrality_tol) in
      let hi = floor (ub.(v) +. integrality_tol) in
      if lo > lb.(v) then lb.(v) <- lo;
      if hi < ub.(v) then ub.(v) <- hi
    end
  in
  let check_var_consistent v where =
    if lb.(v) > ub.(v) +. feas_tol then
      raise
        (Infeas
           (Printf.sprintf "%s: variable %d (%s) has empty domain [%g, %g]" where v
              (Model.var_name model v) lb.(v) ub.(v)))
  in
  (* Pin [v] to [x]: fold it out of every row and the objective. *)
  let substitute_value rule v x =
    if live_var.(v) then begin
      fixval.(v) <- x;
      live_var.(v) <- false;
      lb.(v) <- x;
      ub.(v) <- x;
      incr vars_fixed;
      changed := true;
      obj_const := !obj_const +. (obj_coef.(v) *. x);
      obj_coef.(v) <- 0.0;
      let nrows = ref 0 in
      List.iter
        (fun r ->
          if row_live.(r) then begin
            match List.assoc_opt v row_terms.(r) with
            | None -> ()
            | Some c ->
              row_rhs.(r) <- row_rhs.(r) -. (c *. x);
              row_terms.(r) <- List.filter (fun (u, _) -> u <> v) row_terms.(r);
              incr nrows
          end)
        var_rows.(v);
      touch rule ~vars:1 ~coeffs:!nrows ()
    end
  in
  let check_row_consistent r where =
    (* A row whose terms all vanished must be trivially satisfied. *)
    if row_live.(r) && row_terms.(r) = [] then begin
      let rhs = row_rhs.(r) in
      let ok =
        match row_rel.(r) with
        | Model.Le -> 0.0 <= rhs +. feas_tol
        | Model.Ge -> 0.0 >= rhs -. feas_tol
        | Model.Eq -> abs_float rhs <= feas_tol
      in
      if not ok then
        raise (Infeas (Printf.sprintf "%s: row %d contradictory" where r))
    end
  in
  (* Fix any variable whose domain collapsed (integers: to a single
     integer point; continuous: to a sliver). *)
  let fix_collapsed rule v =
    if live_var.(v) then begin
      round_integer_bounds v;
      check_var_consistent v "bound rounding";
      if ub.(v) < lb.(v) then begin
        (* Numerically inverted but inside feas_tol: a single point up
           to roundoff; collapse it rather than hand Model lb > ub. *)
        let x = (lb.(v) +. ub.(v)) /. 2.0 in
        substitute_value rule v (if kind.(v) = Model.Integer then Float.round x else x)
      end
      else if kind.(v) = Model.Integer then begin
        if lb.(v) = ub.(v) then substitute_value rule v lb.(v)
      end
      else if ub.(v) -. lb.(v) <= eps && lb.(v) > neg_infinity then
        substitute_value rule v ((lb.(v) +. ub.(v)) /. 2.0)
    end
  in
  let tighten_ub rule v x =
    if live_var.(v) && x < ub.(v) -. eps then begin
      ub.(v) <- x;
      incr bounds_tightened;
      touch rule ~vars:1 ();
      changed := true;
      fix_collapsed rule v;
      true
    end
    else false
  in
  let tighten_lb rule v x =
    if live_var.(v) && x > lb.(v) +. eps then begin
      lb.(v) <- x;
      incr bounds_tightened;
      touch rule ~vars:1 ();
      changed := true;
      fix_collapsed rule v;
      true
    end
    else false
  in
  let remove_row rule r =
    row_live.(r) <- false;
    incr rows_removed;
    touch rule ~rows:1 ();
    changed := true
  in
  let live_row_count v =
    List.fold_left
      (fun acc r ->
        if row_live.(r) && List.mem_assoc v row_terms.(r) then acc + 1 else acc)
      0
      (List.sort_uniq compare var_rows.(v))
  in
  (* Rewrite [x_v := k + sum c_u x_u] into every row and the
     objective, record the transform, and retire [v]. The caller is
     responsible for having encoded [v]'s bounds into the surviving
     variables first. *)
  let substitute_affine rule v k terms =
    stack := Affine (v, k, terms) :: !stack;
    live_var.(v) <- false;
    incr vars_substituted;
    changed := true;
    let oc = obj_coef.(v) in
    if not (Float.equal oc 0.0) then begin
      obj_const := !obj_const +. (oc *. k);
      List.iter (fun (u, c) -> obj_coef.(u) <- obj_coef.(u) +. (oc *. c)) terms;
      obj_coef.(v) <- 0.0
    end;
    let nrows = ref 0 and ncoeffs = ref 0 in
    List.iter
      (fun r ->
        if row_live.(r) then begin
          match List.assoc_opt v row_terms.(r) with
          | None -> ()
          | Some d ->
            incr nrows;
            let base = List.filter (fun (u, _) -> u <> v) row_terms.(r) in
            let merged =
              List.fold_left
                (fun acc (u, c) ->
                  incr ncoeffs;
                  let dc = d *. c in
                  match List.assoc_opt u acc with
                  | None ->
                    var_rows.(u) <- r :: var_rows.(u);
                    (u, dc) :: acc
                  | Some c0 ->
                    let c' = c0 +. dc in
                    let acc = List.filter (fun (w, _) -> w <> u) acc in
                    if abs_float c' <= drop_tol then acc else (u, c') :: acc)
                base terms
            in
            row_terms.(r) <- merged;
            row_rhs.(r) <- row_rhs.(r) -. (d *. k);
            check_row_consistent r "substitution"
        end)
      var_rows.(v);
    touch rule ~vars:1 ~rows:!nrows ~coeffs:!ncoeffs ()
  in

  (* ---------- row rules: empty / singleton / infeasible / redundant
     / forcing ---------- *)
  let process_row r =
    if row_live.(r) then begin
      let rhs = row_rhs.(r) in
      match row_terms.(r) with
      | [] ->
        check_row_consistent r "empty row";
        remove_row rl_empty r
      | [ (v, c) ] ->
        (* Singleton row: absorb into the variable's bounds. *)
        let x = rhs /. c in
        (match row_rel.(r) with
        | Model.Eq ->
          if x < lb.(v) -. feas_tol || x > ub.(v) +. feas_tol then
            raise (Infeas (Printf.sprintf "singleton row %d pins var %d outside its domain" r v));
          if kind.(v) = Model.Integer && abs_float (x -. Float.round x) > 1e-6 then
            raise
              (Infeas
                 (Printf.sprintf "singleton row %d pins integer var %d to fractional %g" r v x));
          substitute_value rl_singleton v (if kind.(v) = Model.Integer then Float.round x else x)
        | Model.Le ->
          if c > 0.0 then ignore (tighten_ub rl_singleton v x)
          else ignore (tighten_lb rl_singleton v x);
          check_var_consistent v "singleton row"
        | Model.Ge ->
          if c > 0.0 then ignore (tighten_lb rl_singleton v x)
          else ignore (tighten_ub rl_singleton v x);
          check_var_consistent v "singleton row");
        remove_row rl_singleton r;
        incr singleton_rows
      | terms ->
        let min_fin, min_inf = min_activity terms in
        let max_fin, max_inf = max_activity terms in
        let minact = if min_inf > 0 then neg_infinity else min_fin in
        let maxact = if max_inf > 0 then infinity else max_fin in
        let infeasible =
          match row_rel.(r) with
          | Model.Le -> minact > rhs +. feas_tol
          | Model.Ge -> maxact < rhs -. feas_tol
          | Model.Eq -> minact > rhs +. feas_tol || maxact < rhs -. feas_tol
        in
        if infeasible then
          raise
            (Infeas
               (Printf.sprintf "row %d activity range [%g, %g] excludes rhs %g" r minact
                  maxact rhs));
        let redundant =
          match row_rel.(r) with
          | Model.Le -> maxact <= rhs +. feas_tol
          | Model.Ge -> minact >= rhs -. feas_tol
          | Model.Eq -> maxact <= rhs +. feas_tol && minact >= rhs -. feas_tol
        in
        if redundant then remove_row rl_redundant r
        else begin
          (* Forcing rows: the activity bound meets the rhs exactly, so
             every variable must sit at the bound realizing it. *)
          let forcing_min =
            (row_rel.(r) = Model.Le || row_rel.(r) = Model.Eq)
            && min_inf = 0
            && min_fin >= rhs -. eps
          in
          let forcing_max =
            (row_rel.(r) = Model.Ge || row_rel.(r) = Model.Eq)
            && max_inf = 0
            && max_fin <= rhs +. eps
          in
          if forcing_min then begin
            List.iter
              (fun (v, c) ->
                substitute_value rl_forcing v (if c > 0.0 then lb.(v) else ub.(v)))
              terms;
            remove_row rl_forcing r
          end
          else if forcing_max then begin
            List.iter
              (fun (v, c) ->
                substitute_value rl_forcing v (if c > 0.0 then ub.(v) else lb.(v)))
              terms;
            remove_row rl_forcing r
          end
        end
    end
  in

  (* ---------- activity-based bound tightening over one row ---------- *)
  let tighten_row r =
    if row_live.(r) then begin
      let terms = row_terms.(r) in
      match terms with
      | [] | [ _ ] -> ()
      | _ ->
        let rhs = row_rhs.(r) in
        let min_fin, min_inf = min_activity terms in
        let max_fin, max_inf = max_activity terms in
        List.iter
          (fun (v, c) ->
            if live_var.(v) then begin
              (* <=-direction: x_v restricted by the smallest the rest
                 of the row can be. *)
              if row_rel.(r) = Model.Le || row_rel.(r) = Model.Eq then begin
                let contrib = if c > 0.0 then c *. lb.(v) else c *. ub.(v) in
                let resid_ok =
                  if Float.equal contrib neg_infinity then min_inf = 1 else min_inf = 0
                in
                if resid_ok then begin
                  let resid =
                    if Float.equal contrib neg_infinity then min_fin
                    else min_fin -. contrib
                  in
                  let x = (rhs -. resid) /. c in
                  if c > 0.0 then ignore (tighten_ub rl_bound v x)
                  else ignore (tighten_lb rl_bound v x)
                end
              end;
              (* >=-direction: mirrored with the maximum activity. *)
              if row_rel.(r) = Model.Ge || row_rel.(r) = Model.Eq then begin
                let contrib = if c > 0.0 then c *. ub.(v) else c *. lb.(v) in
                let resid_ok =
                  if Float.equal contrib infinity then max_inf = 1 else max_inf = 0
                in
                if resid_ok then begin
                  let resid =
                    if Float.equal contrib infinity then max_fin
                    else max_fin -. contrib
                  in
                  let x = (rhs -. resid) /. c in
                  if c > 0.0 then ignore (tighten_lb rl_bound v x)
                  else ignore (tighten_ub rl_bound v x)
                end
              end
            end)
          terms
    end
  in

  let is_int_value x = abs_float (x -. Float.round x) <= 1e-9 in

  (* ---------- synonym (doubleton-equality) substitution ---------- *)
  (* [a x + b y = c]: eliminate one of the two, rewriting it as an
     affine function of the survivor. The eliminated variable's bounds
     are first folded into the survivor's (the map is a bijection, so
     the encoding is exact), which makes dropping the variable and the
     row a pure reparametrization. *)
  let synonym_row r =
    if row_live.(r) && row_rel.(r) = Model.Eq then
      match row_terms.(r) with
      | [ (x, a); (y, b) ] when live_var.(x) && live_var.(y) ->
        let try_eliminate (e, ce) (o, co) =
          if abs_float ce < eps then false
          else begin
            let ratio = co /. ce and k = row_rhs.(r) /. ce in
            if abs_float ratio > 1e6 || abs_float k > 1e12 then false
            else if
              kind.(e) = Model.Integer
              && not (kind.(o) = Model.Integer && is_int_value ratio && is_int_value k)
            then false
            else if live_row_count e > max_subst_rows then false
            else begin
              (* x_e = k - ratio * x_o; push e's bounds onto o. IEEE
                 division by the nonzero ratio maps infinite bounds to
                 correctly signed infinities for either sign of ratio,
                 so the endpoints just need sorting; an infinite
                 endpoint imposes no restriction and is skipped. *)
              let lo_e = lb.(e) and hi_e = ub.(e) in
              let b1 = (k -. hi_e) /. ratio and b2 = (k -. lo_e) /. ratio in
              let o_lo = Float.min b1 b2 and o_hi = Float.max b1 b2 in
              if Float.is_finite o_lo && o_lo > lb.(o) +. eps then
                ignore (tighten_lb rl_synonym o o_lo);
              if Float.is_finite o_hi && o_hi < ub.(o) -. eps then
                ignore (tighten_ub rl_synonym o o_hi);
              check_var_consistent o "synonym substitution";
              remove_row rl_synonym r;
              if live_var.(o) then substitute_affine rl_synonym e k [ (o, -.ratio) ]
              else begin
                (* The bound fold collapsed o; e is now determined. *)
                let xe = k -. (ratio *. fixval.(o)) in
                substitute_value rl_synonym e
                  (if kind.(e) = Model.Integer then Float.round xe else xe)
              end;
              true
            end
          end
        in
        (* Prefer eliminating the larger-coefficient variable: the
           substitution ratio stays <= 1, which is the numerically
           safe direction. *)
        let first, second =
          if abs_float a >= abs_float b then (((x, a), (y, b)), ((y, b), (x, a)))
          else (((y, b), (x, a)), ((x, a), (y, b)))
        in
        let (e1, o1), (e2, o2) = (first, second) in
        if not (try_eliminate e1 o1) then ignore (try_eliminate e2 o2)
      | _ -> ()
  in

  (* ---------- implied-free column-singleton substitution ---------- *)
  (* A continuous variable appearing in exactly one live row, an
     equality, whose implied range (from the other terms' bounds) sits
     inside its own bounds: solve the row for it and drop both. The
     variable's bounds can never bind, so nothing is lost. *)
  let free_col_subst v =
    if live_var.(v) && kind.(v) = Model.Continuous then begin
      let rows =
        List.filter
          (fun r -> row_live.(r) && List.mem_assoc v row_terms.(r))
          (List.sort_uniq compare var_rows.(v))
      in
      match rows with
      | [ r ] when row_rel.(r) = Model.Eq -> (
        match List.assoc_opt v row_terms.(r) with
        | Some a when abs_float a >= eps -> (
          let rest = List.filter (fun (u, _) -> u <> v) row_terms.(r) in
          match rest with
          | [] -> () (* singleton row; handled by process_row *)
          | _ ->
            let min_fin, min_inf = min_activity rest in
            let max_fin, max_inf = max_activity rest in
            if min_inf = 0 && max_inf = 0 then begin
              let rhs = row_rhs.(r) in
              let i1 = (rhs -. max_fin) /. a and i2 = (rhs -. min_fin) /. a in
              let implied_lo = Float.min i1 i2 and implied_hi = Float.max i1 i2 in
              if implied_lo >= lb.(v) -. feas_tol && implied_hi <= ub.(v) +. feas_tol
              then begin
                remove_row rl_freecol r;
                substitute_affine rl_freecol v (rhs /. a)
                  (List.map (fun (u, c) -> (u, -.c /. a)) rest)
              end
            end)
        | _ -> ())
      | _ -> ()
    end
  in

  let is_binary v =
    live_var.(v) && kind.(v) = Model.Integer && lb.(v) >= -.eps && ub.(v) <= 1.0 +. eps
  in

  (* ---------- knapsack coefficient strengthening ---------- *)
  (* For a <= row with binary x_k (coef a > 0), if the row is slack
     even at maximum activity whenever x_k = 0 (maxact - a < rhs), the
     pair (a, rhs) can be replaced by (maxact - rhs, maxact - a): the
     x_k = 0 and x_k = 1 branches keep exactly the same feasible
     rests, but the LP relaxation shrinks. Mirrored for a < 0 and for
     >= rows via min activity. Fires only on rows with binaries, so a
     purely continuous model is never touched. *)
  let strengthen_row r =
    if row_live.(r) then begin
      match row_terms.(r) with
      | [] | [ _ ] -> ()
      | terms when row_rel.(r) = Model.Le ->
        let max_fin, max_inf = max_activity terms in
        if max_inf = 0 then begin
          let u = ref max_fin in
          List.iter
            (fun (v, a) ->
              if is_binary v && row_rhs.(r) < !u -. feas_tol then begin
                let b = row_rhs.(r) in
                if a > eps && !u -. a < b -. feas_tol then begin
                  let a' = !u -. b and b' = !u -. a in
                  if a' < a -. eps then begin
                    row_terms.(r) <-
                      List.map (fun (w, c) -> if w = v then (w, a') else (w, c)) row_terms.(r);
                    row_rhs.(r) <- b';
                    u := !u -. a +. a';
                    incr coeffs_strengthened;
                    touch rl_coef ~rows:1 ~coeffs:1 ();
                    changed := true
                  end
                end
                else if a < -.eps && !u < b -. a -. feas_tol then begin
                  let a' = b -. !u in
                  if a' > a +. eps then begin
                    row_terms.(r) <-
                      List.map (fun (w, c) -> if w = v then (w, a') else (w, c)) row_terms.(r);
                    incr coeffs_strengthened;
                    touch rl_coef ~rows:1 ~coeffs:1 ();
                    changed := true
                  end
                end
              end)
            terms
        end
      | terms when row_rel.(r) = Model.Ge ->
        let min_fin, min_inf = min_activity terms in
        if min_inf = 0 then begin
          let l = ref min_fin in
          List.iter
            (fun (v, a) ->
              if is_binary v && !l < row_rhs.(r) -. feas_tol then begin
                let b = row_rhs.(r) in
                if a > eps && !l > b -. a +. feas_tol then begin
                  let a' = b -. !l in
                  if a' < a -. eps then begin
                    row_terms.(r) <-
                      List.map (fun (w, c) -> if w = v then (w, a') else (w, c)) row_terms.(r);
                    incr coeffs_strengthened;
                    touch rl_coef ~rows:1 ~coeffs:1 ();
                    changed := true
                  end
                end
                else if a < -.eps && !l -. a > b +. feas_tol then begin
                  let a' = !l -. b and b' = !l -. a in
                  if a' > a +. eps then begin
                    row_terms.(r) <-
                      List.map (fun (w, c) -> if w = v then (w, a') else (w, c)) row_terms.(r);
                    row_rhs.(r) <- b';
                    l := !l -. a +. a';
                    incr coeffs_strengthened;
                    touch rl_coef ~rows:1 ~coeffs:1 ();
                    changed := true
                  end
                end
              end)
            terms
        end
      | _ -> ()
    end
  in

  (* ---------- cliques from the formulation-(3) structure ---------- *)
  (* A clique is a set of binaries of which at most one (capacity
     rows, <= 1) or exactly one (assignment rows, = 1) can be set.
     Both redundancy detection and probing use them. *)
  let clique_exact = ref [||] (* per clique: true when = 1, false when <= 1 *)
  and clique_members = ref [||]
  and clique_source = ref [||] (* defining row index *)
  and is_clique_source = Array.make (max m 1) false
  and var_cliques = Array.make (max n 1) [] in
  let build_cliques () =
    Array.fill var_cliques 0 (Array.length var_cliques) [];
    Array.fill is_clique_source 0 (Array.length is_clique_source) false;
    let acc = ref [] in
    for r = 0 to m - 1 do
      if
        row_live.(r)
        && (match row_rel.(r) with Model.Eq | Model.Le -> true | Model.Ge -> false)
        && abs_float (row_rhs.(r) -. 1.0) <= eps
        && List.length row_terms.(r) >= 2
        && List.for_all
             (fun (v, c) -> abs_float (c -. 1.0) <= eps && is_binary v)
             row_terms.(r)
      then acc := (row_rel.(r) = Model.Eq, List.map fst row_terms.(r), r) :: !acc
    done;
    let cl = Array.of_list (List.rev !acc) in
    clique_exact := Array.map (fun (e, _, _) -> e) cl;
    clique_members := Array.map (fun (_, ms, _) -> ms) cl;
    clique_source := Array.map (fun (_, _, r) -> r) cl;
    Array.iter (fun (_, _, r) -> is_clique_source.(r) <- true) cl;
    Array.iteri
      (fun i (_, ms, _) ->
        List.iter (fun v -> var_cliques.(v) <- i :: var_cliques.(v)) ms)
      cl
  in

  (* Clique-aware activity range of a row: terms covered by a clique
     contribute at most the clique's best member (and, for = 1 cliques
     fully contained in the row, at least its worst), not the sum —
     exactly why a path-budget row whose per-operation candidate
     groups all fit the budget is redundant even though plain activity
     overshoots. *)
  let clique_activity r =
    let terms = row_terms.(r) in
    let assigned = Hashtbl.create 16 in
    let row_vars = Hashtbl.create 16 in
    List.iter (fun (v, c) -> Hashtbl.replace row_vars v c) terms;
    let groups = ref [] and loose = ref [] in
    List.iter
      (fun (v, c) ->
        if not (Hashtbl.mem assigned v) then begin
          if is_binary v && var_cliques.(v) <> [] then begin
            (* Greedy: use the clique covering the most unassigned row
               variables. *)
            let best = ref (-1) and best_cover = ref [] in
            List.iter
              (fun ci ->
                if !clique_source.(ci) <> r then begin
                  let cover =
                    List.filter
                      (fun u -> Hashtbl.mem row_vars u && not (Hashtbl.mem assigned u))
                      !clique_members.(ci)
                  in
                  if List.length cover > List.length !best_cover then begin
                    best := ci;
                    best_cover := cover
                  end
                end)
              var_cliques.(v);
            if !best >= 0 && List.length !best_cover >= 2 then begin
              List.iter (fun u -> Hashtbl.replace assigned u ()) !best_cover;
              let cs = List.map (fun u -> Hashtbl.find row_vars u) !best_cover in
              let cmax = List.fold_left Float.max neg_infinity cs in
              let cmin = List.fold_left Float.min infinity cs in
              let full =
                !clique_exact.(!best)
                && List.for_all (fun u -> Hashtbl.mem row_vars u) !clique_members.(!best)
              in
              let gmax = if full then cmax else Float.max 0.0 cmax in
              let gmin = if full then cmin else Float.min 0.0 cmin in
              groups := (gmin, gmax) :: !groups
            end
            else begin
              Hashtbl.replace assigned v ();
              loose := (v, c) :: !loose
            end
          end
          else begin
            Hashtbl.replace assigned v ();
            loose := (v, c) :: !loose
          end
        end)
      terms;
    let min_fin, min_inf = min_activity !loose in
    let max_fin, max_inf = max_activity !loose in
    let gmin = List.fold_left (fun a (lo, _) -> a +. lo) 0.0 !groups in
    let gmax = List.fold_left (fun a (_, hi) -> a +. hi) 0.0 !groups in
    let minact = if min_inf > 0 then neg_infinity else min_fin +. gmin in
    let maxact = if max_inf > 0 then infinity else max_fin +. gmax in
    (minact, maxact)
  in

  (* Remove rows the clique structure proves redundant. Clique-source
     rows are never removed by this rule, so every removal certificate
     stays grounded in rows that survive (or in bounds alone). *)
  let clique_reduce r =
    if row_live.(r) && List.length row_terms.(r) >= 2 && not is_clique_source.(r)
    then begin
      let minact, maxact = clique_activity r in
      let rhs = row_rhs.(r) in
      let redundant =
        match row_rel.(r) with
        | Model.Le -> maxact <= rhs +. feas_tol
        | Model.Ge -> minact >= rhs -. feas_tol
        | Model.Eq -> maxact <= rhs +. feas_tol && minact >= rhs -. feas_tol
      in
      if redundant then remove_row rl_clique r
      else begin
        let infeasible =
          match row_rel.(r) with
          | Model.Le -> minact > rhs +. feas_tol
          | Model.Ge -> maxact < rhs -. feas_tol
          | Model.Eq -> minact > rhs +. feas_tol || maxact < rhs -. feas_tol
        in
        if infeasible then
          raise
            (Infeas
               (Printf.sprintf "row %d clique-activity range [%g, %g] excludes rhs %g" r
                  minact maxact rhs))
      end
    end
  in

  (* ---------- clique-aware probing ---------- *)
  (* Tentatively set a binary to 1; every clique containing it forces
     its mates to 0. If any touched row's activity range then excludes
     its rhs, the binary can never be 1 — fix it to 0.

     Probing is the most expensive rule by an order of magnitude, so
     it is throttled two ways, both deterministic: each variable is
     probed at most once per [run] (fixings cascade through the other
     rules anyway), and the whole pass stops after a term-scan budget
     proportional to the matrix size — the standard work limit every
     production presolver puts on probing. *)
  let probed = Array.make (max n 1) false in
  let probe_ops = ref 0 in
  let probe_ops_limit = max 200_000 (40 * !orig_nnz) in
  let probe_var v =
    if
      is_binary v
      && (not probed.(v))
      && var_cliques.(v) <> []
      && !probe_ops < probe_ops_limit
    then begin
      probed.(v) <- true;
      let forced = Hashtbl.create 16 in
      Hashtbl.replace forced v 1.0;
      List.iter
        (fun ci ->
          List.iter
            (fun u -> if u <> v && live_var.(u) then Hashtbl.replace forced u 0.0)
            !clique_members.(ci))
        var_cliques.(v);
      let touched =
        Hashtbl.fold (fun u _ acc -> List.rev_append var_rows.(u) acc) forced []
        |> List.sort_uniq compare
        |> List.filter (fun r -> row_live.(r))
      in
      let contradiction =
        List.exists
          (fun r ->
            let terms = row_terms.(r) in
            probe_ops := !probe_ops + List.length terms;
            (* One scan accumulates both activity ends. *)
            let lo, lo_inf, hi, hi_inf =
              List.fold_left
                (fun (lo, lk, hi, hk) (u, c) ->
                  match Hashtbl.find_opt forced u with
                  | Some x ->
                    let t = c *. x in
                    (lo +. t, lk, hi +. t, hk)
                  | None ->
                    let cmin = if c > 0.0 then c *. lb.(u) else c *. ub.(u) in
                    let cmax = if c > 0.0 then c *. ub.(u) else c *. lb.(u) in
                    let lo, lk =
                      if Float.equal cmin neg_infinity then (lo, lk + 1)
                      else (lo +. cmin, lk)
                    in
                    let hi, hk =
                      if Float.equal cmax infinity then (hi, hk + 1)
                      else (hi +. cmax, hk)
                    in
                    (lo, lk, hi, hk))
                (0.0, 0, 0.0, 0) terms
            in
            let minact = if lo_inf > 0 then neg_infinity else lo in
            let maxact = if hi_inf > 0 then infinity else hi in
            match row_rel.(r) with
            | Model.Le -> minact > row_rhs.(r) +. feas_tol
            | Model.Ge -> maxact < row_rhs.(r) -. feas_tol
            | Model.Eq -> minact > row_rhs.(r) +. feas_tol || maxact < row_rhs.(r) -. feas_tol)
          touched
      in
      if contradiction then begin
        (* substitute_value records the application, so the per-rule
           counter stays equal to probe_fixings. *)
        incr probe_fixings;
        substitute_value rl_probe v 0.0
      end
    end
  in

  let rounds = ref 0 in
  let expired () = Agingfp_util.Budget.expired budget in
  let outcome =
    try
      (* Initial integer bound sanitation. *)
      for v = 0 to n - 1 do
        fix_collapsed rl_bound v
      done;
      let continue_ = ref true in
      (* Budget checks sit between rule passes: a partial presolve is
         still a valid (just less reduced) problem, so stopping early
         degrades quality, never correctness. *)
      while !continue_ && !rounds < max_rounds && not (expired ()) do
        incr rounds;
        changed := false;
        for r = 0 to m - 1 do
          process_row r
        done;
        if not (expired ()) then
          for r = 0 to m - 1 do
            tighten_row r
          done;
        if not (expired ()) then
          for r = 0 to m - 1 do
            synonym_row r
          done;
        if not (expired ()) then
          for v = 0 to n - 1 do
            free_col_subst v
          done;
        if not (expired ()) then begin
          build_cliques ();
          for r = 0 to m - 1 do
            clique_reduce r
          done
        end;
        if not (expired ()) then
          for r = 0 to m - 1 do
            strengthen_row r
          done;
        if not (expired ()) then begin
          (* Probing invalidates the clique table as it fixes
             variables; rebuild, then probe every clique member. *)
          build_cliques ();
          Array.iteri
            (fun ci members ->
              ignore ci;
              if not (expired ()) then List.iter probe_var members)
            !clique_members
        end;
        continue_ := !changed
      done;
      None
    with Infeas msg -> Some msg
  in
  match outcome with
  | Some msg -> Proven_infeasible msg
  | None -> (
    (* Rebuild a compacted model. *)
    let var_map = Array.make n (-1) in
    let reduced_model = Model.create () in
    for v = 0 to n - 1 do
      if live_var.(v) then
        var_map.(v) <-
          Model.add_var reduced_model ~name:(Model.var_name model v) ~lb:lb.(v)
            ~ub:ub.(v) ~kind:kind.(v)
    done;
    try
      let reduced_nnz = ref 0 in
      for r = 0 to m - 1 do
        if row_live.(r) then begin
          match row_terms.(r) with
          | [] -> check_row_consistent r "rebuild"
          | terms ->
            reduced_nnz := !reduced_nnz + List.length terms;
            let lhs =
              List.fold_left (fun e (v, c) -> Expr.add_term e c var_map.(v)) Expr.zero terms
            in
            ignore
              (Model.add_constraint ~name:(Model.row_name model r) reduced_model lhs
                 row_rel.(r) row_rhs.(r))
        end
      done;
      let obj' =
        Array.to_seq (Array.init n (fun v -> v))
        |> Seq.fold_left
             (fun e v ->
               if live_var.(v) && not (Float.equal obj_coef.(v) 0.0) then
                 Expr.add_term e obj_coef.(v) var_map.(v)
               else e)
             (Expr.const !obj_const)
      in
      Model.set_objective reduced_model dir obj';
      let per_rule =
        List.mapi
          (fun i name ->
            ( name,
              {
                applications = r_apps.(i);
                rows_touched = r_rows.(i);
                vars_touched = r_vars.(i);
                coeffs_touched = r_coeffs.(i);
              } ))
          rule_names
      in
      (* Substitution fill-in can outweigh eliminations; report the net
         change as two nonnegative figures rather than one counter that
         could go negative. *)
      let nnz_delta = !orig_nnz - !reduced_nnz in
      let stats =
        {
          rounds = !rounds;
          rows_removed = !rows_removed;
          singleton_rows = !singleton_rows;
          vars_fixed = !vars_fixed;
          vars_substituted = !vars_substituted;
          bounds_tightened = !bounds_tightened;
          coeffs_strengthened = !coeffs_strengthened;
          probe_fixings = !probe_fixings;
          nnz_removed = max 0 nnz_delta;
          nnz_fillin = max 0 (-nnz_delta);
          per_rule;
        }
      in
      Log.debug (fun k -> k "presolve: %a" pp_reductions stats);
      Reduced { reduced_model; var_map; fixval; stack = !stack; n_orig = n; stats }
    with Infeas msg -> Proven_infeasible msg)
