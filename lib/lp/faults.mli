(** Seeded fault injection for the LP/MILP layer.

    Production MILP stacks misbehave in ways unit tests of the happy
    path never exercise: premature iteration limits, numerically
    perturbed pivots, infeasibility verdicts that are simply wrong,
    and exceptions escaping mid-solve. This module makes {!Simplex}
    and {!Milp} raise exactly those failures {e on purpose}, at
    configurable probabilities from a seeded deterministic stream, so
    the [test_faults] suite can prove the remap pipeline's degradation
    ladder survives every class:

    - {e spurious iteration limit} — a simplex checkpoint reports
      [Iteration_limit] although iterations remain;
    - {e perturbed pivot} — a pivot step length is scaled by a random
      factor, corrupting the numerics the way a near-singular basis
      would;
    - {e forged infeasibility} — an [Optimal] solve exit is replaced
      by [Infeasible], the solver lying the way a buggy phase 1 lies;
    - {e mid-solve exception} — {!Injected} is raised from inside the
      pivot loop, modelling a crash in foreign solver code.

    The injector is process-global and off by default ({!clear}); the
    solver hot path pays one branch on a [bool ref] when no spec is
    installed. Injection sites only fire at state-consistent
    checkpoints (loop heads, solve exits), so a surviving solver
    state remains structurally valid — warm restarts after a fault
    are expected to work. *)

exception Injected of string
(** Raised by {!checkpoint} when a mid-solve exception fires. The
    payload names the site (e.g. ["Simplex.optimize"]). *)

type spec = {
  seed : int;
  p_iteration_limit : float;  (** per simplex-pivot checkpoint *)
  p_perturb : float;          (** per pivot step *)
  perturb_mag : float;        (** relative step-scale magnitude, e.g. 0.05 *)
  p_infeasible : float;       (** per optimal solve exit *)
  p_exception : float;        (** per simplex-pivot checkpoint *)
}

val none : spec
(** All probabilities zero (seed 0) — installing it is equivalent to
    {!clear}. *)

val of_string : string -> (spec, string) result
(** Parse a CLI spec: comma-separated [key=value] with keys [seed],
    [iter], [pivot], [mag], [infeas], [raise] — e.g.
    ["seed=42,infeas=0.5,raise=0.05"]. Unmentioned keys default to
    {!none}'s values. *)

val to_string : spec -> string

val install : spec -> unit
(** Arm the injector with a fresh deterministic stream derived from
    [spec.seed]. Resets the {!fired} counters. *)

val clear : unit -> unit
val active : unit -> bool

val with_spec : spec -> (unit -> 'a) -> 'a
(** [with_spec spec f] runs [f] with the injector armed and disarms
    it afterwards, exceptions included. *)

(** {1 Counters}

    How many faults of each class actually fired since the last
    {!install} — tests use these to distinguish "pipeline survived
    the fault" from "the fault never happened". *)

type fired = {
  iteration_limits : int;
  perturbations : int;
  infeasibilities : int;
  exceptions : int;
}

val fired : unit -> fired

(** {1 Solver hooks}

    Called by {!Simplex} at its checkpoints. All are no-ops (and
    branch-predictable) when the injector is disarmed. *)

val checkpoint : where:string -> unit
(** Pivot-loop head. Raises {!Injected} with probability
    [p_exception]. *)

val spurious_iteration_limit : unit -> bool
(** True with probability [p_iteration_limit]. *)

val step_scale : unit -> float
(** [1.0], or [1.0 ± U(0, perturb_mag)] with probability
    [p_perturb]. *)

val forge_infeasible : unit -> bool
(** True with probability [p_infeasible]. *)
