(** MILP/LP presolve: a fixpoint-driven rule pipeline.

    Shrinks a {!Model.t} before handing it to {!Simplex} / {!Milp}.
    Rules, each iterated until none fires (GurobiPresolver-style
    driver, one named counter per rule):

    - [empty_row] / [singleton_row]: trivial rows removed or absorbed
      into variable bounds;
    - [redundant_row] / [forcing_row]: activity-based elimination —
      rows no bound combination can violate, and rows only one bound
      combination can satisfy (which fixes every variable in them);
    - [bound_tighten]: constraint-activity bound tightening with
      integer rounding;
    - [synonym_subst]: doubleton-equality (synonym) substitution —
      [a x + b y = c] rewrites [y] as an affine function of [x]
      everywhere (rows and objective) and drops both the row and [y];
    - [free_col_subst]: implied-free column-singleton substitution — a
      continuous variable appearing in exactly one (equality) row
      whose implied range lies inside its bounds is solved out of the
      model;
    - [coef_strengthen]: coefficient strengthening of binaries in
      knapsack ([Le]/[Ge]) rows — tightens the LP relaxation without
      touching the integer feasible set;
    - [clique_reduce]: redundancy detection using the one-hot /
      at-most-one structure of formulation (3)'s assignment and
      capacity rows as cliques (a path-budget row all of whose
      per-operation candidate groups fit the budget is redundant even
      though plain activity says otherwise);
    - [probe]: clique-aware probing — tentatively set a binary to 1,
      propagate every clique it belongs to, and fix it to 0 when any
      row's activity range collapses.

    Substituting rules rewrite the model, so reconstruction is no
    longer a per-variable lookup: {!postsolve} replays a stack of
    recorded transforms (fixings and affine substitutions) to lift a
    reduced-space solution back to the original variable space.

    Every reduction either preserves the feasible set exactly (an
    affine reparametrization) or preserves the set of optimal
    solutions' objective value; [coef_strengthen] additionally
    preserves the {e integer} feasible set while shrinking the LP
    relaxation — it never fires on a purely continuous model, so
    presolving an LP is still relaxation-exact. *)

type rule_stats = {
  applications : int;     (** times the rule fired *)
  rows_touched : int;     (** rows removed or rewritten by it *)
  vars_touched : int;     (** variables fixed/substituted/tightened *)
  coeffs_touched : int;   (** matrix coefficients modified *)
}

val no_rule_stats : rule_stats

val rule_names : string list
(** Stable order used by reports: [empty_row]; [singleton_row];
    [redundant_row]; [forcing_row]; [bound_tighten]; [synonym_subst];
    [free_col_subst]; [coef_strengthen]; [clique_reduce]; [probe]. *)

type reductions = {
  rounds : int;            (** fixpoint passes executed *)
  rows_removed : int;      (** empty + redundant + converted rows *)
  singleton_rows : int;    (** rows converted into variable bounds *)
  vars_fixed : int;        (** variables pinned to a value *)
  vars_substituted : int;  (** variables rewritten as affine functions *)
  bounds_tightened : int;  (** individual bound improvements *)
  coeffs_strengthened : int; (** knapsack coefficients tightened *)
  probe_fixings : int;     (** binaries fixed by probing *)
  nnz_removed : int;
      (** net decrease in constraint-matrix nonzeros (0 when
          substitution fill-in dominates) *)
  nnz_fillin : int;
      (** net increase in constraint-matrix nonzeros when substitution
          fill-in outweighs eliminations (0 otherwise; at most one of
          [nnz_removed] / [nnz_fillin] is nonzero per run) *)
  per_rule : (string * rule_stats) list;  (** keyed by {!rule_names} *)
}

val no_reductions : reductions
val add_reductions : reductions -> reductions -> reductions

val pp_reductions : Format.formatter -> reductions -> unit
(** One-line aggregate summary. *)

val pp_per_rule : Format.formatter -> reductions -> unit
(** Multi-line per-rule breakdown (rules that never fired are
    omitted). *)

type t
(** A presolved problem: the reduced model plus the transform stack
    needed to reconstruct original-space solutions. *)

type outcome =
  | Reduced of t
  | Proven_infeasible of string
      (** Presolve alone established infeasibility (activity bound or
          empty-row contradiction); the message names the culprit. *)

val run :
  ?budget:Agingfp_util.Budget.t ->
  ?integrality_tol:float ->
  ?max_rounds:int ->
  Model.t ->
  outcome
(** Presolve [model]. The input model is not modified. [max_rounds]
    bounds the outer fixpoint iteration (default 10);
    [integrality_tol] is the tolerance for integer bound rounding
    (default 1e-9). [budget] is polled between rule passes; on expiry
    the reductions found so far are kept and the loop exits — a
    partially presolved model is still equivalent to the input. *)

val reduced : t -> Model.t
(** The compacted model (fresh variable/row numbering, same objective
    direction; eliminated variables' objective contributions are
    folded into the remaining columns and the objective constant). *)

val reductions : t -> reductions

val num_orig_vars : t -> int

val reduced_var : t -> int -> int option
(** [reduced_var t v] is the reduced-model index of original variable
    [v], or [None] if it was fixed or substituted away. *)

val postsolve : t -> float array -> float array
(** Lift a reduced-space assignment (indexed by reduced variables)
    back to the original variable space: copy surviving variables,
    fill in fixed values, then replay the affine substitution stack
    newest-first so every right-hand side is already known when it is
    evaluated. *)
