(** MILP/LP presolve.

    Shrinks a {!Model.t} before handing it to {!Simplex} / {!Milp}:

    - constraint-activity bound tightening (with integer rounding),
    - singleton-row-to-bound conversion,
    - removal of empty and redundant rows,
    - forcing-constraint detection and fixed-variable substitution,
    - binary probing on the Eq. (3) assignment rows
      ([sum OP_ijk = 1] with unit coefficients over binaries).

    Every reduction is feasibility-based — implied by the constraints
    themselves — so the reduced problem has the same optimal objective
    as the original for both the LP relaxation and the MILP, and a
    solution of the reduced model lifts back to an original-space
    solution via {!postsolve} that passes [Model.check_feasible]. *)

type reductions = {
  rounds : int;            (** fixpoint passes executed *)
  rows_removed : int;      (** empty + redundant + converted rows *)
  singleton_rows : int;    (** rows converted into variable bounds *)
  vars_fixed : int;        (** variables substituted out *)
  bounds_tightened : int;  (** individual bound improvements *)
  probe_fixings : int;     (** binaries fixed by assignment-row probing *)
}

val no_reductions : reductions
val add_reductions : reductions -> reductions -> reductions

type t
(** A presolved problem: the reduced model plus the mapping needed to
    reconstruct original-space solutions. *)

type outcome =
  | Reduced of t
  | Proven_infeasible of string
      (** Presolve alone established infeasibility (activity bound or
          empty-row contradiction); the message names the culprit. *)

val run :
  ?budget:Agingfp_util.Budget.t ->
  ?integrality_tol:float ->
  ?max_rounds:int ->
  Model.t ->
  outcome
(** Presolve [model]. The input model is not modified. [max_rounds]
    bounds the outer fixpoint iteration (default 10);
    [integrality_tol] is the tolerance for integer bound rounding
    (default 1e-9). [budget] is polled between fixpoint rounds; on
    expiry the reductions found so far are kept and the loop exits —
    a partially presolved model is still equivalent to the input. *)

val reduced : t -> Model.t
(** The compacted model (fresh variable/row numbering, same objective
    direction; fixed-variable objective contributions are folded into
    the objective constant). *)

val reductions : t -> reductions

val num_orig_vars : t -> int

val reduced_var : t -> int -> int option
(** [reduced_var t v] is the reduced-model index of original variable
    [v], or [None] if it was fixed away. *)

val postsolve : t -> float array -> float array
(** Lift a reduced-space assignment (indexed by reduced variables)
    back to the original variable space, filling in fixed values. *)
