(** Mixed-integer solving on top of {!Simplex}.

    Two entry points:

    - {!solve}: branch & bound with most-fractional branching and a
      node budget.
    - {!relax_and_fix}: the paper's two-step MILP (§V.B Step 1) —
      solve the LP relaxation, pre-map every binary whose relaxed
      value exceeds a threshold (0.95 in the paper) to 1, then run
      branch & bound on the residual problem. Falls back to plain
      branch & bound when the pre-mapping makes the residual
      infeasible. *)

type result =
  | Feasible of Simplex.solution
      (** Integer-feasible; optimal when the search ran to completion
          with an objective, first-found otherwise. *)
  | Infeasible
  | Unknown  (** Budget exhausted before any integer solution. *)

type params = {
  lp_params : Simplex.params;
  node_limit : int;
  integrality_tol : float;
  first_solution : bool;
      (** Stop at the first integer-feasible node. The floorplanner's
          formulation (3) has a null objective, so any feasible point
          is as good as any other; this is the default. *)
}

val default_params : params

val solve : ?params:params -> Model.t -> result
(** Branch & bound. The input model is not modified. *)

val relax_and_fix : ?threshold:float -> ?params:params -> Model.t -> result
(** [threshold] defaults to 0.95 as in the paper. The input model is
    not modified; reported solutions are checked against the original
    model before being returned. *)

val pp_result : Format.formatter -> result -> unit
