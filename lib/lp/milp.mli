(** Mixed-integer solving on top of {!Simplex}.

    The search is a real branch & bound tree ({!Node_store}): explicit
    nodes with parent links and per-node dual bounds, a pluggable
    traversal strategy (depth-first diving, best-bound-first, or a
    plunge-then-jump hybrid), pseudocost branching seeded by
    strong-branching probes ({!Brancher}), a global dual bound
    maintained as the minimum over open nodes, and early termination
    once the relative optimality gap reaches [mip_gap] (stop reason
    {!Agingfp_util.Budget.Gap_limit} — a certified stop, not a budget
    cut).

    Two entry points:

    - {!solve}: presolve ({!Presolve}) followed by the tree search.
      The root node runs a cold simplex solve; every descendant
      re-optimizes a warm solver state (dual-simplex recovery), so
      child nodes skip column assembly and phase 1.
    - {!relax_and_fix}: the paper's two-step MILP (§V.B Step 1) —
      solve the LP relaxation, pre-map every binary whose relaxed
      value exceeds a threshold (0.95 in the paper) to 1, then run
      branch & bound on the residual problem. Falls back to plain
      branch & bound when the pre-mapping makes the residual
      infeasible.

    Returned solutions are always in the original variable space with
    integer variables rounded to exact integral values. *)

type result =
  | Feasible of Simplex.solution
      (** Integer-feasible; optimal when the search ran to completion
          with an objective, within [mip_gap] of optimal on a
          [Gap_limit] stop, first-found otherwise. *)
  | Infeasible
  | Unknown  (** Budget exhausted before any integer solution. *)

type params = {
  lp_params : Simplex.params;
  node_limit : int;
  integrality_tol : float;
  first_solution : bool;
      (** Stop at the first integer-feasible node. The floorplanner's
          formulation (3) has a null objective, so any feasible point
          is as good as any other; this is the default. Strong
          branching probes are skipped in this mode — they only pay
          for dual-bound growth. *)
  presolve : bool;  (** Run {!Presolve} before the search. Default [true]. *)
  warm_start : bool;
      (** Re-optimize tree nodes from the previous basis instead of
          solving each node cold. Default [true]. *)
  budget : Agingfp_util.Budget.t;
      (** Wall-clock/allowance budget checked at every node entry and
          threaded into presolve and the node LPs (overriding
          [lp_params.budget] when not unlimited). On expiry the search
          stops and returns the best incumbent found so far. Default
          {!Agingfp_util.Budget.unlimited}. *)
  jobs : int;
      (** Domains pumping the shared node tree. [1] (the default) runs
          the identical search on the calling domain with no pool —
          sequential solves stay deterministic and byte-identical to
          what a 1-worker pool would produce. [jobs > 1] draws open
          nodes from the shared {!Node_store} under the incumbent
          mutex, each worker with its own warm solver state. The
          parallel search returns the same status and — when run to
          completion with [first_solution = false] — the same optimal
          objective as the sequential one; node counts and which
          optimal point is reported may differ. Values [< 1] are
          treated as [1]. *)
  mip_gap : float;
      (** Relative optimality-gap tolerance: with an incumbent at
          (sign-corrected) objective [p] and global dual bound [d],
          the search stops once [(p - d) / max(|p|, |d|, 1e-9) <=
          mip_gap], reporting stop reason [Gap_limit] and the achieved
          gap in {!stats}. [0.0] (the default) disables early gap
          termination and reproduces the run-to-completion proof. *)
  traversal : Node_store.strategy;
      (** Node selection order. [Hybrid] (the default) dives like
          [Dfs] while the current plunge survives and jumps to the
          best dual bound when it dies; [Best_first] grows the dual
          bound fastest; [Dfs] is the classic memory-light dive.
          All three reach the same status/objective at [mip_gap =
          0.0] with [first_solution = false]. *)
  branching : Brancher.rule;
      (** Branching-variable rule. [Pseudocost] (the default) is
          reliability-initialized by a few strong-branching probes at
          shallow depth; [Most_fractional] is the classic fallback.
          Both reach the same final objective on complete searches. *)
  cuts : Cuts.config;
      (** Cutting-plane separation ({!Cuts}): Gomory mixed-integer
          cuts from the warm tableau plus lifted knapsack covers,
          managed by a shared cut pool with activity aging. Rounds run
          at the root and at shallow tree nodes; every admitted cut is
          valid for the integer hull of the presolved model, so
          cuts-on and cuts-off searches agree on status and objective
          at [mip_gap = 0.0]. The incumbent is exactly audited against
          the whole pool in rational arithmetic before it is returned
          ({!Cuts.check_all}); a violation raises
          {!Agingfp_util.Invariant.Violation}. Default
          {!Cuts.default_config}; {!Cuts.off} disables separation. *)
  heuristics : Heuristics.config;
      (** Root primal heuristics ({!Heuristics}): diving and the
          feasibility pump, run on the root relaxation under
          [budget_fraction] of the solve budget to seed the incumbent
          before node 1. Candidates are installed only after passing
          {!Model.check_feasible}. With [first_solution] they run
          before separation (an incumbent ends the search); otherwise
          after, on the cut-tightened relaxation. Default
          {!Heuristics.default_config}; {!Heuristics.off} disables. *)
}

val default_params : params

(** {1 Solver statistics} *)

type stats = {
  presolve : Presolve.reductions;
  nodes : int;          (** branch & bound nodes explored *)
  warm_solves : int;    (** node LPs served from a previous basis *)
  cold_solves : int;    (** full phase-1 LP solves *)
  lp_iterations : int;  (** total simplex pivots/bound flips *)
  refactorizations : int;
      (** basis-kernel factorizations ({!Simplex.state_stats}) *)
  eta_updates : int;    (** product-form updates absorbed by the kernel *)
  fill_in : int;        (** peak nonzeros of live factors + eta file *)
  drift_refreshes : int;
      (** refactorizations forced by measured residual drift *)
  dual_bound : float;
      (** global dual bound in the original objective space: a lower
          bound for minimization, an upper bound for maximization.
          Equals the incumbent objective when the search proved
          optimality; [nan] when no tree search ran. Aggregation
          keeps the most recent solve's bound (bounds of different
          models are not comparable). *)
  gap : float;
      (** achieved relative optimality gap: [0] on a completed proof,
          [<= mip_gap] on a [Gap_limit] stop, the honest distance
          between incumbent and dual bound on any other early stop
          ([infinity] when nothing was proven). Aggregation keeps the
          maximum — an aggregate is only as certified as its loosest
          member. *)
  stop : Agingfp_util.Budget.stop_reason;
      (** Why the search ended: [Optimal] means it ran to natural
          completion (proved optimality/infeasibility or hit
          [first_solution]); [Gap_limit] is a certified
          gap-tolerance stop; anything else names the budget limit or
          fault that cut it short. Aggregation keeps the most severe
          reason. *)
  cuts_separated : int;
      (** cuts admitted to the pool (Gomory + cover, all workers) *)
  cuts_active : int;  (** pool cuts still active when the search ended *)
  cuts_aged_out : int;
      (** lifetime deactivations by the activity-aging machinery *)
  heuristic_incumbents : int;
      (** incumbents installed by diving / the feasibility pump *)
  root_gap_closed : float;
      (** fraction of the root integrality gap closed by root
          separation rounds: [(root_after_cuts - root_lp) /
          (final_objective - root_lp)] in sign space, clamped to
          [0, 1]. [nan] when cuts were off, no tree search ran, the
          search found no incumbent, or the root relaxation was
          already tight. Aggregation keeps the most recent non-[nan]
          value (like [dual_bound], it is per-model). *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

val reset_cumulative : unit -> unit
(** Zero the process-wide cumulative counters (every [solve] /
    [relax_and_fix] call and every {!note_lp_solve} accumulates into
    them). *)

val cumulative : unit -> stats

val note_lp_solve :
  ?refactorizations:int ->
  ?eta_updates:int ->
  ?fill_in:int ->
  ?drift_refreshes:int ->
  warm:bool ->
  iterations:int ->
  unit ->
  unit
(** Record a bare {!Simplex} solve performed outside [Milp] (the remap
    pipeline solves many standalone LP relaxations) so it shows up in
    {!cumulative}; the optional arguments carry the kernel-counter
    deltas from {!Simplex.state_stats} (all default to [0]). *)

(** {1 Solving} *)

val solve : ?params:params -> Model.t -> result
(** Branch & bound. The input model is not modified. *)

val solve_with_stats : ?params:params -> Model.t -> result * stats

val relax_and_fix : ?threshold:float -> ?params:params -> Model.t -> result
(** [threshold] defaults to 0.95 as in the paper. The input model is
    not modified; reported solutions are checked against the original
    model before being returned. Note: when the pre-fixed residual
    solves, the reported [gap]/[dual_bound] are relative to the
    residual model — the pre-mapping is a heuristic restriction. *)

val relax_and_fix_with_stats :
  ?threshold:float -> ?params:params -> Model.t -> result * stats

val pp_result : Format.formatter -> result -> unit
