(** Mixed-integer solving on top of {!Simplex}.

    Two entry points:

    - {!solve}: presolve ({!Presolve}) followed by branch & bound with
      most-fractional branching and a node budget. The root node runs
      a cold simplex solve; every descendant re-optimizes the same
      warm solver state from its parent's basis (dual-simplex
      recovery), so child nodes skip column assembly and phase 1.
    - {!relax_and_fix}: the paper's two-step MILP (§V.B Step 1) —
      solve the LP relaxation, pre-map every binary whose relaxed
      value exceeds a threshold (0.95 in the paper) to 1, then run
      branch & bound on the residual problem. Falls back to plain
      branch & bound when the pre-mapping makes the residual
      infeasible.

    Returned solutions are always in the original variable space with
    integer variables rounded to exact integral values. *)

type result =
  | Feasible of Simplex.solution
      (** Integer-feasible; optimal when the search ran to completion
          with an objective, first-found otherwise. *)
  | Infeasible
  | Unknown  (** Budget exhausted before any integer solution. *)

type params = {
  lp_params : Simplex.params;
  node_limit : int;
  integrality_tol : float;
  first_solution : bool;
      (** Stop at the first integer-feasible node. The floorplanner's
          formulation (3) has a null objective, so any feasible point
          is as good as any other; this is the default. *)
  presolve : bool;  (** Run {!Presolve} before the search. Default [true]. *)
  warm_start : bool;
      (** Re-optimize child nodes from the parent basis instead of
          solving each node cold. Default [true]. *)
  budget : Agingfp_util.Budget.t;
      (** Wall-clock/allowance budget checked at every node entry and
          threaded into presolve and the node LPs (overriding
          [lp_params.budget] when not unlimited). On expiry the search
          stops and returns the best incumbent found so far. Default
          {!Agingfp_util.Budget.unlimited}. *)
  jobs : int;
      (** Domains used for the branch & bound search. [1] (the
          default) runs the classic sequential DFS unchanged; [jobs >
          1] pumps a shared node queue from [jobs] domains of a
          {!Agingfp_util.Pool}, each with its own warm solver state,
          pruning against an incumbent shared under a mutex. The
          parallel search returns the same status and — when run to
          completion with [first_solution = false] — the same optimal
          objective as the sequential one; node counts and which
          optimal point is reported may differ. Values [< 1] are
          treated as [1]. *)
}

val default_params : params

(** {1 Solver statistics} *)

type stats = {
  presolve : Presolve.reductions;
  nodes : int;          (** branch & bound nodes explored *)
  warm_solves : int;    (** node LPs served from a parent basis *)
  cold_solves : int;    (** full phase-1 LP solves *)
  lp_iterations : int;  (** total simplex pivots/bound flips *)
  refactorizations : int;
      (** basis-kernel factorizations ({!Simplex.state_stats}) *)
  eta_updates : int;    (** product-form updates absorbed by the kernel *)
  fill_in : int;        (** peak nonzeros of live factors + eta file *)
  drift_refreshes : int;
      (** refactorizations forced by measured residual drift *)
  stop : Agingfp_util.Budget.stop_reason;
      (** Why the search ended: [Optimal] means it ran to natural
          completion (proved optimality/infeasibility or hit
          [first_solution]); anything else names the budget limit or
          fault that cut it short. Aggregation keeps the most severe
          reason. *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

val reset_cumulative : unit -> unit
(** Zero the process-wide cumulative counters (every [solve] /
    [relax_and_fix] call and every {!note_lp_solve} accumulates into
    them). *)

val cumulative : unit -> stats

val note_lp_solve :
  ?refactorizations:int ->
  ?eta_updates:int ->
  ?fill_in:int ->
  ?drift_refreshes:int ->
  warm:bool ->
  iterations:int ->
  unit ->
  unit
(** Record a bare {!Simplex} solve performed outside [Milp] (the remap
    pipeline solves many standalone LP relaxations) so it shows up in
    {!cumulative}; the optional arguments carry the kernel-counter
    deltas from {!Simplex.state_stats} (all default to [0]). *)

(** {1 Solving} *)

val solve : ?params:params -> Model.t -> result
(** Branch & bound. The input model is not modified. *)

val solve_with_stats : ?params:params -> Model.t -> result * stats

val relax_and_fix : ?threshold:float -> ?params:params -> Model.t -> result
(** [threshold] defaults to 0.95 as in the paper. The input model is
    not modified; reported solutions are checked against the original
    model before being returned. *)

val relax_and_fix_with_stats :
  ?threshold:float -> ?params:params -> Model.t -> result * stats

val pp_result : Format.formatter -> result -> unit
