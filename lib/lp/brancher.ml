(* Branching-variable selection for the tree search.

   Two rules:

   - [Most_fractional]: the classic fallback — pick the integer
     variable whose relaxed value sits farthest from an integer
     (deterministic: first maximum in [int_vars] order).

   - [Pseudocost]: per-variable, per-direction averages of observed
     objective degradation per unit of rounded-away fraction. Each
     processed child node contributes one observation (its relaxation
     objective minus its parent's), and shallow nodes seed unreliable
     variables with strong-branching probes (the search solves the
     probe LPs and feeds the deltas back through [observe]); selection
     scores a candidate by the product of its estimated up/down
     degradations, which prefers variables that hurt both children —
     the splits that move the dual bound.

   All state lives in flat arrays indexed by variable; the search
   mutex serializes access, and ties break on the variable index so
   selection is deterministic. *)

type rule = Most_fractional | Pseudocost

let rule_to_string = function
  | Most_fractional -> "most-fractional"
  | Pseudocost -> "pseudocost"

let rule_of_string = function
  | "most-fractional" | "most_fractional" | "fractional" -> Some Most_fractional
  | "pseudocost" -> Some Pseudocost
  | _ -> None

let pp_rule ppf r = Format.pp_print_string ppf (rule_to_string r)

type t = {
  rule : rule;
  reliability : int;
      (* observations per direction before a variable's pseudocost is
         trusted without a strong-branching probe *)
  down_sum : float array;  (* sum of delta / frac per direction *)
  down_cnt : int array;
  up_sum : float array;
  up_cnt : int array;
}

let create ?(reliability = 1) rule ~nvars =
  {
    rule;
    reliability;
    down_sum = Array.make nvars 0.0;
    down_cnt = Array.make nvars 0;
    up_sum = Array.make nvars 0.0;
    up_cnt = Array.make nvars 0;
  }

let rule t = t.rule

(* Fractional integer variables with their relaxed values, in
   [int_vars] order. *)
let fractional ~integrality_tol int_vars (values : float array) =
  List.filter_map
    (fun v ->
      let x = values.(v) in
      let frac = Float.abs (x -. Float.round x) in
      if frac > integrality_tol then Some (v, x) else None)
    int_vars

let unreliable t ~var =
  t.rule = Pseudocost
  && (t.down_cnt.(var) < t.reliability || t.up_cnt.(var) < t.reliability)

let observe t ~var ~(dir : Node_store.dir) ~frac ~delta =
  if frac > 1e-12 && Float.is_finite delta then begin
    (* Degradations are non-negative by LP monotonicity; clamp the
       numerical noise of near-equal parent/child objectives. *)
    let unit = Float.max 0.0 delta /. frac in
    match dir with
    | Node_store.Down ->
      t.down_sum.(var) <- t.down_sum.(var) +. unit;
      t.down_cnt.(var) <- t.down_cnt.(var) + 1
    | Node_store.Up ->
      t.up_sum.(var) <- t.up_sum.(var) +. unit;
      t.up_cnt.(var) <- t.up_cnt.(var) + 1
  end

let avg sum cnt var =
  if cnt.(var) = 0 then None else Some (sum.(var) /. float_of_int cnt.(var))

(* Product rule with a small additive floor: a variable whose observed
   degradations are both zero still scores by its fraction, so
   null-objective (pure feasibility) models fall back to
   most-fractional order instead of degenerating to index order. *)
let score t ~var ~value =
  let fdown = value -. Float.of_int (int_of_float (floor value)) in
  let fup = 1.0 -. fdown in
  let est avg_opt frac =
    match avg_opt with None -> frac | Some a -> Float.max (frac *. 1e-6) (a *. frac)
  in
  let down = est (avg t.down_sum t.down_cnt var) fdown in
  let up = est (avg t.up_sum t.up_cnt var) fup in
  (Float.max down 1e-12 *. Float.max up 1e-12) +. (1e-6 *. fdown *. fup)

(* The old solver's most-fractional pick, bit for bit: strictly
   greater fraction wins, so the first maximum in candidate order is
   selected. *)
let select_most_fractional candidates =
  let best = ref None in
  let best_frac = ref 0.0 in
  List.iter
    (fun (v, x) ->
      let frac = Float.abs (x -. Float.round x) in
      if frac > !best_frac then begin
        best := Some v;
        best_frac := frac
      end)
    candidates;
  !best

let select t candidates =
  match t.rule with
  | Most_fractional -> select_most_fractional candidates
  | Pseudocost ->
    let best = ref None in
    let best_score = ref neg_infinity in
    List.iter
      (fun (v, x) ->
        let s = score t ~var:v ~value:x in
        if s > !best_score then begin
          best := Some v;
          best_score := s
        end)
      candidates;
    !best
