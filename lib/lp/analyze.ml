type severity = Error | Warning | Info

type code =
  | Crossed_bounds
  | Nonfinite_bound
  | Empty_row
  | Duplicate_row
  | Dangling_var
  | Row_infeasible_by_bounds
  | Row_forced_by_bounds
  | Nonbinary_in_one_hot
  | Coefficient_range

type diagnostic = {
  severity : severity;
  code : code;
  row : int option;
  var : int option;
  message : string;
}

type params = { tol : float; condition_threshold : float }

let default_params = { tol = 1e-9; condition_threshold = 1e8 }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Stable kebab-case ids for machine consumers (`agingfp lint --json`),
   mirroring codelint's rule-id convention. *)
let code_label = function
  | Crossed_bounds -> "crossed-bounds"
  | Nonfinite_bound -> "nonfinite-bound"
  | Empty_row -> "empty-row"
  | Duplicate_row -> "duplicate-row"
  | Dangling_var -> "dangling-var"
  | Row_infeasible_by_bounds -> "row-infeasible-by-bounds"
  | Row_forced_by_bounds -> "row-forced-by-bounds"
  | Nonbinary_in_one_hot -> "nonbinary-in-one-hot"
  | Coefficient_range -> "coefficient-range"

let pp_diagnostic ppf d =
  let pp_loc () =
    match (d.row, d.var) with
    | Some r, _ -> Printf.sprintf "[row %d]" r
    | None, Some v -> Printf.sprintf "[var %d]" v
    | None, None -> ""
  in
  Format.fprintf ppf "%s%s: %s" (severity_label d.severity) (pp_loc ()) d.message

let pp_summary ppf ds =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  let ne = count Error and nw = count Warning and ni = count Info in
  let plural n = if n = 1 then "" else "s" in
  Format.fprintf ppf "%d error%s, %d warning%s, %d info%s" ne (plural ne) nw
    (plural nw) ni (plural ni)

let errors ds = List.filter (fun d -> d.severity = Error) ds

(* Names for messages: fall back to the index when unnamed. *)
let vname m v =
  match Model.var_name m v with "" -> Printf.sprintf "x%d" v | s -> s

let rname m r =
  match Model.row_name m r with "" -> Printf.sprintf "c%d" r | s -> s

let rel_label = function Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "="

(* Min/max activity of [terms] over the variable box. Each side is
   finite or the matching infinity; mixed-sign infinities cannot occur
   on one side because a lower contribution is never +inf (and dually),
   so no NaN arises as long as the bounds themselves are not NaN —
   rows touching NaN-bounded vars are skipped by the caller. *)
let activity_bounds m terms =
  let lo = ref 0.0 and hi = ref 0.0 in
  List.iter
    (fun (v, c) ->
      let lb = Model.var_lb m v and ub = Model.var_ub m v in
      if c > 0.0 then begin
        lo := !lo +. (c *. lb);
        hi := !hi +. (c *. ub)
      end
      else begin
        lo := !lo +. (c *. ub);
        hi := !hi +. (c *. lb)
      end)
    terms;
  (!lo, !hi)

let is_binary m v =
  Model.var_kind m v = Model.Integer
  && Model.var_lb m v >= 0.0
  && Model.var_ub m v <= 1.0

(* An Eq. (3) one-hot assignment row: sum of >= 2 unit-coefficient
   terms pinned to exactly 1. *)
let is_one_hot_row terms rel rhs =
  rel = Model.Eq && Float.equal rhs 1.0
  && List.length terms >= 2
  && List.for_all (fun (_, c) -> Float.equal c 1.0) terms

let lint ?(params = default_params) m =
  let nvars = Model.num_vars m and nrows = Model.num_constraints m in
  let diags = ref [] in
  let emit severity code ?row ?var message =
    diags := { severity; code; row; var; message } :: !diags
  in
  (* -- Variable box ------------------------------------------------ *)
  let bad_bounds = Array.make nvars false in
  for v = 0 to nvars - 1 do
    let lb = Model.var_lb m v and ub = Model.var_ub m v in
    if Float.is_nan lb || Float.is_nan ub then begin
      bad_bounds.(v) <- true;
      emit Error Nonfinite_bound ~var:v
        (Printf.sprintf "var `%s` has a NaN bound" (vname m v))
    end
    else if Float.equal lb infinity || Float.equal ub neg_infinity then begin
      bad_bounds.(v) <- true;
      emit Error Nonfinite_bound ~var:v
        (Printf.sprintf "var `%s` bounds [%g, %g] admit no finite value"
           (vname m v) lb ub)
    end
    else if lb > ub then begin
      bad_bounds.(v) <- true;
      emit Error Crossed_bounds ~var:v
        (Printf.sprintf "var `%s` has crossed bounds [%g, %g]" (vname m v) lb ub)
    end
  done;
  (* -- Rows -------------------------------------------------------- *)
  let used = Array.make nvars false in
  let _, obj = Model.objective m in
  List.iter (fun (v, _) -> if v < nvars then used.(v) <- true) (Expr.terms obj);
  let seen_rows = Hashtbl.create (max 16 nrows) in
  let abs_min = ref infinity and abs_max = ref 0.0 in
  for r = 0 to nrows - 1 do
    let lhs, rel, rhs = Model.constraint_row m r in
    let terms = Expr.terms lhs in
    List.iter
      (fun (v, c) ->
        if v < nvars then used.(v) <- true;
        let a = abs_float c in
        if a < !abs_min then abs_min := a;
        if a > !abs_max then abs_max := a)
      terms;
    (match terms with
    | [] ->
      let holds =
        match rel with
        | Model.Le -> 0.0 <= rhs +. params.tol
        | Model.Ge -> 0.0 >= rhs -. params.tol
        | Model.Eq -> abs_float rhs <= params.tol
      in
      if holds then
        emit Info Empty_row ~row:r
          (Printf.sprintf "row `%s` has no terms (trivially true)" (rname m r))
      else
        emit Error Empty_row ~row:r
          (Printf.sprintf "row `%s` has no terms but requires 0 %s %g"
             (rname m r) (rel_label rel) rhs)
    | _ ->
      let key = (terms, rel, rhs) in
      (match Hashtbl.find_opt seen_rows key with
      | Some first ->
        emit Warning Duplicate_row ~row:r
          (Printf.sprintf "row `%s` duplicates row %d `%s`" (rname m r) first
             (rname m first))
      | None -> Hashtbl.add seen_rows key r);
      if not (List.exists (fun (v, _) -> v < nvars && bad_bounds.(v)) terms)
      then begin
        let lo, hi = activity_bounds m terms in
        let infeasible =
          match rel with
          | Model.Le -> lo > rhs +. params.tol
          | Model.Ge -> hi < rhs -. params.tol
          | Model.Eq -> lo > rhs +. params.tol || hi < rhs -. params.tol
        in
        let forced =
          match rel with
          | Model.Le -> hi <= rhs +. params.tol
          | Model.Ge -> lo >= rhs -. params.tol
          | Model.Eq -> lo >= rhs -. params.tol && hi <= rhs +. params.tol
        in
        if infeasible then
          emit Error Row_infeasible_by_bounds ~row:r
            (Printf.sprintf
               "row `%s` is infeasible by variable bounds alone: activity in \
                [%g, %g] cannot satisfy %s %g"
               (rname m r) lo hi (rel_label rel) rhs)
        else if forced then
          emit Info Row_forced_by_bounds ~row:r
            (Printf.sprintf
               "row `%s` is satisfied by variable bounds alone (activity in \
                [%g, %g] vs %s %g)"
               (rname m r) lo hi (rel_label rel) rhs)
      end;
      if is_one_hot_row terms rel rhs then
        List.iter
          (fun (v, _) ->
            if v < nvars && not (is_binary m v) then
              emit Warning Nonbinary_in_one_hot ~row:r ~var:v
                (Printf.sprintf
                   "one-hot row `%s` contains non-binary var `%s` (%s, bounds \
                    [%g, %g])"
                   (rname m r) (vname m v)
                   (match Model.var_kind m v with
                   | Model.Integer -> "integer"
                   | Model.Continuous -> "continuous")
                   (Model.var_lb m v) (Model.var_ub m v)))
          terms)
  done;
  (* -- Model-wide summaries ---------------------------------------- *)
  for v = 0 to nvars - 1 do
    if not used.(v) then
      emit Warning Dangling_var ~var:v
        (Printf.sprintf "var `%s` appears in no row and not in the objective"
           (vname m v))
  done;
  if !abs_max > 0.0 && !abs_min > 0.0 && !abs_max /. !abs_min > params.condition_threshold
  then
    emit Warning Coefficient_range
      (Printf.sprintf
         "constraint coefficients span [%g, %g] (ratio %.3g > %g): expect \
          conditioning trouble"
         !abs_min !abs_max (!abs_max /. !abs_min) params.condition_threshold);
  List.rev !diags
