[@@@codelint.allow "budget-poll"
  "scanner/lexer loops: every while below advances a cursor over an \
   in-memory string, bounded by its length — parse time is dwarfed by the \
   solves the budget ladder supervises"]

let var_name v = Printf.sprintf "x%d" v

let float_lit f =
  (* LP format accepts plain decimal notation; avoid exponents for the
     magnitudes this library produces. *)
  if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let expr_terms_string e =
  let terms = Expr.terms e in
  if terms = [] then "0 x0"
  else begin
    let buf = Buffer.create 128 in
    List.iteri
      (fun i (v, c) ->
        if i = 0 then begin
          if c < 0.0 then Buffer.add_string buf "- ";
          if not (Float.equal (abs_float c) 1.0) then begin
            Buffer.add_string buf (float_lit (abs_float c));
            Buffer.add_char buf ' '
          end
        end
        else begin
          Buffer.add_string buf (if c < 0.0 then " - " else " + ");
          if not (Float.equal (abs_float c) 1.0) then begin
            Buffer.add_string buf (float_lit (abs_float c));
            Buffer.add_char buf ' '
          end
        end;
        Buffer.add_string buf (var_name v))
      terms;
    Buffer.contents buf
  end

(* LP-format row labels may not contain whitespace or operators; keep
   alphanumerics and underscores, fall back to the positional [c<i>]
   label for anything that does not survive sanitization. *)
let row_label model i =
  match Model.row_name model i with
  | "" -> Printf.sprintf "c%d" i
  | name ->
    let ok = ref (name.[0] < '0' || name.[0] > '9') in
    String.iter
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
        | _ -> ok := false)
      name;
    if !ok then name else Printf.sprintf "c%d" i

let to_string model =
  let buf = Buffer.create 4096 in
  let dir, obj = Model.objective model in
  Buffer.add_string buf
    (match dir with Model.Minimize -> "Minimize\n" | Model.Maximize -> "Maximize\n");
  Buffer.add_string buf (" obj: " ^ expr_terms_string obj ^ "\n");
  Buffer.add_string buf "Subject To\n";
  Model.iter_constraints model (fun i lhs rel rhs ->
      let op = match rel with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "=" in
      Buffer.add_string buf
        (Printf.sprintf " %s: %s %s %s\n" (row_label model i) (expr_terms_string lhs) op
           (float_lit rhs)));
  (* Bounds: LP format defaults to 0 <= x < +inf. *)
  let bounds = Buffer.create 512 in
  for v = 0 to Model.num_vars model - 1 do
    let lb = Model.var_lb model v and ub = Model.var_ub model v in
    let binary =
      Model.var_kind model v = Model.Integer
      && Float.equal lb 0.0 && Float.equal ub 1.0
    in
    if not binary then begin
      if lb = ub then
        Buffer.add_string bounds (Printf.sprintf " %s = %s\n" (var_name v) (float_lit lb))
      else begin
        if Float.equal lb neg_infinity && Float.equal ub infinity then
          Buffer.add_string bounds (Printf.sprintf " %s free\n" (var_name v))
        else begin
          if not (Float.equal lb 0.0) then
            Buffer.add_string bounds
              (if Float.equal lb neg_infinity then
                 Printf.sprintf " -inf <= %s\n" (var_name v)
               else Printf.sprintf " %s >= %s\n" (var_name v) (float_lit lb));
          if not (Float.equal ub infinity) then
            Buffer.add_string bounds
              (Printf.sprintf " %s <= %s\n" (var_name v) (float_lit ub))
        end
      end
    end
  done;
  if Buffer.length bounds > 0 then begin
    Buffer.add_string buf "Bounds\n";
    Buffer.add_buffer buf bounds
  end;
  (* Integer sections. *)
  let binaries = Buffer.create 256 in
  let generals = Buffer.create 256 in
  for v = 0 to Model.num_vars model - 1 do
    if Model.var_kind model v = Model.Integer then begin
      if
        Float.equal (Model.var_lb model v) 0.0
        && Float.equal (Model.var_ub model v) 1.0
      then
        Buffer.add_string binaries (Printf.sprintf " %s\n" (var_name v))
      else Buffer.add_string generals (Printf.sprintf " %s\n" (var_name v))
    end
  done;
  if Buffer.length binaries > 0 then begin
    Buffer.add_string buf "Binary\n";
    Buffer.add_buffer buf binaries
  end;
  if Buffer.length generals > 0 then begin
    Buffer.add_string buf "General\n";
    Buffer.add_buffer buf generals
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_file path model =
  try
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string model));
    Ok ()
  with Sys_error msg -> Error msg

(* -------------------------------------------------------------------
   Parser for the subset this writer emits (plus common variations):
   a linear objective, labelled rows, a Bounds section with the five
   writer forms, Binary/General lists, End. Round-tripping a model
   through [to_string]/[of_string] recovers variable and row counts,
   kinds, relations and (up to [%.12g] printing) coefficients, bounds
   and right-hand sides.
   ------------------------------------------------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let relation_of_token = function
  | "<=" | "<" | "=<" -> Some Model.Le
  | ">=" | ">" | "=>" -> Some Model.Ge
  | "=" -> Some Model.Eq
  | _ -> None

let number_of_token t =
  match String.lowercase_ascii t with
  | "inf" | "+inf" | "infinity" | "+infinity" -> Some infinity
  | "-inf" | "-infinity" -> Some neg_infinity
  | _ -> float_of_string_opt t

let is_label t = String.length t > 1 && t.[String.length t - 1] = ':'
let strip_label t = String.sub t 0 (String.length t - 1)

(* Tokens split by whitespace, comments ([\ ] to end of line) removed. *)
let tokenize text =
  let toks = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line =
           match String.index_opt line '\\' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.iter (fun t ->
                let t = String.trim t in
                if t <> "" then toks := t :: !toks));
  Array.of_list (List.rev !toks)

type section = Sec_rows | Sec_bounds | Sec_binary | Sec_general

let section_of_token toks i =
  (* Returns [(section-or-end, tokens consumed)] when the token at [i]
     opens a new section. *)
  match String.lowercase_ascii toks.(i) with
  | "minimize" | "min" -> Some (`Obj Model.Minimize, 1)
  | "maximize" | "max" -> Some (`Obj Model.Maximize, 1)
  | "subject" when i + 1 < Array.length toks
                   && String.lowercase_ascii toks.(i + 1) = "to" ->
    Some (`Sec Sec_rows, 2)
  | "st" | "s.t." -> Some (`Sec Sec_rows, 1)
  | "bounds" | "bound" -> Some (`Sec Sec_bounds, 1)
  | "binary" | "binaries" | "bin" -> Some (`Sec Sec_binary, 1)
  | "general" | "generals" | "gen" | "integer" | "integers" ->
    Some (`Sec Sec_general, 1)
  | "end" -> Some (`End, 1)
  | _ -> None

(* [(name, coef)] terms plus an additive constant. *)
let parse_expr_tokens toks =
  let terms = ref [] and constant = ref 0.0 in
  let sign = ref 1.0 and pending = ref None in
  (* An operator must be followed by a number or a variable. *)
  let dangling_op = ref false in
  let flush_pending () =
    match !pending with
    | Some c ->
      constant := !constant +. c;
      pending := None
    | None -> ()
  in
  List.iter
    (fun t ->
      if t = "+" then dangling_op := true
      else if t = "-" then begin
        dangling_op := true;
        sign := -. !sign
      end
      else if is_label t then ()
      else begin
        dangling_op := false;
        match number_of_token t with
        | Some n ->
          flush_pending ();
          pending := Some (!sign *. n);
          sign := 1.0
        | None ->
          let c = match !pending with Some c -> c | None -> !sign in
          pending := None;
          sign := 1.0;
          terms := (t, c) :: !terms
      end)
    toks;
  if !dangling_op then fail "expression ends on a dangling + or -";
  flush_pending ();
  (List.rev !terms, !constant)

let parse_rows_tokens toks =
  let rows = ref [] and cur = ref [] in
  let n = Array.length toks in
  let i = ref 0 in
  while !i < n do
    let t = toks.(!i) in
    match relation_of_token t with
    | Some rel ->
      incr i;
      if !i >= n then fail "constraint relation %s with no right-hand side" t;
      let rhs =
        match number_of_token toks.(!i) with
        | Some v -> v
        | None -> fail "expected a number after %s, got %s" t toks.(!i)
      in
      incr i;
      let lhs_toks = List.rev !cur in
      cur := [];
      let label, lhs_toks =
        match lhs_toks with
        | l :: rest when is_label l -> (strip_label l, rest)
        | _ -> ("", lhs_toks)
      in
      if lhs_toks = [] then fail "constraint `%s` has an empty left-hand side" label;
      rows := (label, lhs_toks, rel, rhs) :: !rows
    | None ->
      cur := t :: !cur;
      incr i
  done;
  if !cur <> [] then
    fail "dangling tokens after the last constraint: %s" (String.concat " " (List.rev !cur));
  List.rev !rows

type bound_entry = {
  mutable blo : float option;
  mutable bhi : float option;
  mutable bfree : bool;
}

let parse_bounds_tokens toks =
  let entries : (string, bound_entry) Hashtbl.t = Hashtbl.create 32 in
  let entry name =
    match Hashtbl.find_opt entries name with
    | Some e -> e
    | None ->
      let e = { blo = None; bhi = None; bfree = false } in
      Hashtbl.add entries name e;
      e
  in
  let n = Array.length toks in
  let i = ref 0 in
  let next what =
    if !i >= n then fail "bounds section ends inside an entry (expected %s)" what;
    let t = toks.(!i) in
    incr i;
    t
  in
  while !i < n do
    let t = next "a bound entry" in
    match number_of_token t with
    | Some v -> (
      (* [v <= x [<= v2]]  or  [v >= x] *)
      match relation_of_token (next "a relation") with
      | Some Model.Le ->
        let name = next "a variable" in
        (entry name).blo <- Some v;
        if !i < n && relation_of_token toks.(!i) = Some Model.Le then begin
          incr i;
          match number_of_token (next "a number") with
          | Some v2 -> (entry name).bhi <- Some v2
          | None -> fail "expected a number closing the range bound on %s" name
        end
      | Some Model.Ge ->
        let name = next "a variable" in
        (entry name).bhi <- Some v
      | _ -> fail "unsupported bound entry starting with %s" t)
    | None -> (
      let name = t in
      match String.lowercase_ascii (next "a relation or `free`") with
      | "free" -> (entry name).bfree <- true
      | "=" -> (
        match number_of_token (next "a number") with
        | Some v ->
          let e = entry name in
          e.blo <- Some v;
          e.bhi <- Some v
        | None -> fail "expected a number fixing %s" name)
      | "<=" | "<" | "=<" -> (
        match number_of_token (next "a number") with
        | Some v -> (entry name).bhi <- Some v
        | None -> fail "expected a number bounding %s above" name)
      | ">=" | ">" | "=>" -> (
        match number_of_token (next "a number") with
        | Some v -> (entry name).blo <- Some v
        | None -> fail "expected a number bounding %s below" name)
      | other -> fail "unsupported bound form `%s %s`" name other)
  done;
  entries

let of_string text =
  try
    let toks = tokenize text in
    let n = Array.length toks in
    (* Slice the token stream into sections. *)
    let dir = ref Model.Minimize in
    let obj_toks = ref [] and row_toks = ref [] in
    let bounds_toks = ref [] and binary_toks = ref [] and general_toks = ref [] in
    let cur = ref None in
    let i = ref 0 in
    let stop = ref false in
    while (not !stop) && !i < n do
      match section_of_token toks !i with
      | Some (`Obj d, k) ->
        dir := d;
        cur := Some obj_toks;
        i := !i + k
      | Some (`Sec s, k) ->
        cur :=
          Some
            (match s with
            | Sec_rows -> row_toks
            | Sec_bounds -> bounds_toks
            | Sec_binary -> binary_toks
            | Sec_general -> general_toks);
        i := !i + k
      | Some (`End, _) -> stop := true
      | None -> (
        match !cur with
        | None -> fail "token `%s` before any section header" toks.(!i)
        | Some acc ->
          acc := toks.(!i) :: !acc;
          incr i)
    done;
    let obj_terms, obj_const = parse_expr_tokens (List.rev !obj_toks) in
    let rows = parse_rows_tokens (Array.of_list (List.rev !row_toks)) in
    let bounds = parse_bounds_tokens (Array.of_list (List.rev !bounds_toks)) in
    let binaries = List.rev !binary_toks and generals = List.rev !general_toks in
    (* Variable registry, in order of first appearance. When every
       name matches the writer's [x<index>] convention, indices are
       recovered exactly (including never-mentioned gap variables). *)
    let order = ref [] and seen = Hashtbl.create 64 in
    let note name =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        order := name :: !order
      end
    in
    List.iter (fun (v, _) -> note v) obj_terms;
    List.iter (fun (_, lhs, _, _) ->
        List.iter (fun t ->
            if t <> "+" && t <> "-" && number_of_token t = None then note t)
          lhs)
      rows;
    List.iter note
      (List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) bounds []));
    List.iter note binaries;
    List.iter note generals;
    let names = List.rev !order in
    let writer_index name =
      if String.length name >= 2 && name.[0] = 'x' then
        int_of_string_opt (String.sub name 1 (String.length name - 1))
      else None
    in
    let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let all_writer_style =
      names <> [] && List.for_all (fun nm -> writer_index nm <> None) names
    in
    let nvars =
      if all_writer_style then begin
        let top = ref 0 in
        List.iter
          (fun nm ->
            let ix = Option.get (writer_index nm) in
            Hashtbl.replace index nm ix;
            if ix > !top then top := ix)
          names;
        !top + 1
      end
      else begin
        List.iteri (fun ix nm -> Hashtbl.replace index nm ix) names;
        List.length names
      end
    in
    let name_of = Array.make nvars "" in
    (Hashtbl.iter (fun nm ix -> name_of.(ix) <- nm) index
    [@codelint.allow "det-order"
      "each binding writes the distinct array slot its own value names: \
       disjoint writes commute"]);
    for ix = 0 to nvars - 1 do
      if name_of.(ix) = "" then name_of.(ix) <- Printf.sprintf "x%d" ix
    done;
    let is_integer = Hashtbl.create 64 in
    List.iter (fun nm -> Hashtbl.replace is_integer nm ()) binaries;
    List.iter (fun nm -> Hashtbl.replace is_integer nm ()) generals;
    let is_binary = Hashtbl.create 64 in
    List.iter (fun nm -> Hashtbl.replace is_binary nm ()) binaries;
    (* Materialize. *)
    let model = Model.create () in
    Array.iter
      (fun nm ->
        let kind =
          if Hashtbl.mem is_integer nm then Model.Integer else Model.Continuous
        in
        let e = Hashtbl.find_opt bounds nm in
        let dlo, dhi =
          if Hashtbl.mem is_binary nm then (0.0, 1.0) else (0.0, infinity)
        in
        let dlo, dhi =
          match e with Some e when e.bfree -> (neg_infinity, infinity) | _ -> (dlo, dhi)
        in
        let lb = match e with Some { blo = Some v; _ } -> v | _ -> dlo in
        let ub = match e with Some { bhi = Some v; _ } -> v | _ -> dhi in
        if lb > ub then fail "variable %s has crossed bounds [%g, %g]" nm lb ub;
        ignore (Model.add_var ~name:nm ~lb ~ub ~kind model))
      name_of;
    let var_of nm =
      match Hashtbl.find_opt index nm with
      | Some ix -> ix
      | None -> fail "unknown variable %s" nm
    in
    let build_expr toks =
      let terms, constant = parse_expr_tokens toks in
      List.fold_left
        (fun e (nm, c) -> Expr.add_term e c (var_of nm))
        (Expr.const constant) terms
    in
    List.iter
      (fun (label, lhs_toks, rel, rhs) ->
        ignore (Model.add_constraint ~name:label model (build_expr lhs_toks) rel rhs))
      rows;
    let obj =
      List.fold_left
        (fun e (nm, c) -> Expr.add_term e c (var_of nm))
        (Expr.const obj_const) obj_terms
    in
    Model.set_objective model !dir obj;
    Ok model
  with
  | Parse_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let read_file path =
  try of_string (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg
