let var_name v = Printf.sprintf "x%d" v

let float_lit f =
  (* LP format accepts plain decimal notation; avoid exponents for the
     magnitudes this library produces. *)
  if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let expr_terms_string e =
  let terms = Expr.terms e in
  if terms = [] then "0 x0"
  else begin
    let buf = Buffer.create 128 in
    List.iteri
      (fun i (v, c) ->
        if i = 0 then begin
          if c < 0.0 then Buffer.add_string buf "- ";
          if abs_float c <> 1.0 then begin
            Buffer.add_string buf (float_lit (abs_float c));
            Buffer.add_char buf ' '
          end
        end
        else begin
          Buffer.add_string buf (if c < 0.0 then " - " else " + ");
          if abs_float c <> 1.0 then begin
            Buffer.add_string buf (float_lit (abs_float c));
            Buffer.add_char buf ' '
          end
        end;
        Buffer.add_string buf (var_name v))
      terms;
    Buffer.contents buf
  end

let to_string model =
  let buf = Buffer.create 4096 in
  let dir, obj = Model.objective model in
  Buffer.add_string buf
    (match dir with Model.Minimize -> "Minimize\n" | Model.Maximize -> "Maximize\n");
  Buffer.add_string buf (" obj: " ^ expr_terms_string obj ^ "\n");
  Buffer.add_string buf "Subject To\n";
  Model.iter_constraints model (fun i lhs rel rhs ->
      let op = match rel with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "=" in
      Buffer.add_string buf
        (Printf.sprintf " c%d: %s %s %s\n" i (expr_terms_string lhs) op (float_lit rhs)));
  (* Bounds: LP format defaults to 0 <= x < +inf. *)
  let bounds = Buffer.create 512 in
  for v = 0 to Model.num_vars model - 1 do
    let lb = Model.var_lb model v and ub = Model.var_ub model v in
    let binary = Model.var_kind model v = Model.Integer && lb = 0.0 && ub = 1.0 in
    if not binary then begin
      if lb = ub then
        Buffer.add_string bounds (Printf.sprintf " %s = %s\n" (var_name v) (float_lit lb))
      else begin
        if lb = neg_infinity && ub = infinity then
          Buffer.add_string bounds (Printf.sprintf " %s free\n" (var_name v))
        else begin
          if lb <> 0.0 then
            Buffer.add_string bounds
              (if lb = neg_infinity then
                 Printf.sprintf " -inf <= %s\n" (var_name v)
               else Printf.sprintf " %s >= %s\n" (var_name v) (float_lit lb));
          if ub <> infinity then
            Buffer.add_string bounds
              (Printf.sprintf " %s <= %s\n" (var_name v) (float_lit ub))
        end
      end
    end
  done;
  if Buffer.length bounds > 0 then begin
    Buffer.add_string buf "Bounds\n";
    Buffer.add_buffer buf bounds
  end;
  (* Integer sections. *)
  let binaries = Buffer.create 256 in
  let generals = Buffer.create 256 in
  for v = 0 to Model.num_vars model - 1 do
    if Model.var_kind model v = Model.Integer then begin
      if Model.var_lb model v = 0.0 && Model.var_ub model v = 1.0 then
        Buffer.add_string binaries (Printf.sprintf " %s\n" (var_name v))
      else Buffer.add_string generals (Printf.sprintf " %s\n" (var_name v))
    end
  done;
  if Buffer.length binaries > 0 then begin
    Buffer.add_string buf "Binary\n";
    Buffer.add_buffer buf binaries
  end;
  if Buffer.length generals > 0 then begin
    Buffer.add_string buf "General\n";
    Buffer.add_buffer buf generals
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_file path model =
  try
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string model));
    Ok ()
  with Sys_error msg -> Error msg
