(** Linear expressions over integer-indexed decision variables.

    An expression is a sparse map [var -> coefficient] plus a constant
    term. Variables are the integers handed out by {!Model.add_var}. *)

type t

val zero : t

val const : float -> t

val var : ?coef:float -> int -> t
(** [var ~coef v] is the single-term expression [coef * x_v]
    ([coef] defaults to 1). *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val add_term : t -> float -> int -> t
(** [add_term e c v] is [e + c * x_v]. *)

val sum : t list -> t

val constant : t -> float
val coef : t -> int -> float

val terms : t -> (int * float) list
(** Non-zero terms sorted by variable index. *)

val eval : (int -> float) -> t -> float
(** [eval assignment e] substitutes variable values. *)

val pp : Format.formatter -> t -> unit
