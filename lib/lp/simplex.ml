module Invariant = Agingfp_util.Invariant
let src = Logs.Src.create "agingfp.simplex" ~doc:"LP simplex solver"

module Log = (val Logs.src_log src : Logs.LOG)
module Budget = Agingfp_util.Budget

type solution = { values : float array; objective : float; iterations : int }

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit
  | Deadline
  | Fault of string

type params = {
  max_iterations : int;
  feasibility_tol : float;
  optimality_tol : float;
  kernel : Basis.kind;
  drift_tol : float;
  budget : Budget.t;
}

let default_params =
  {
    max_iterations = 0;
    feasibility_tol = 1e-7;
    optimality_tol = 1e-7;
    kernel = Basis.Sparse_lu;
    drift_tol = 1e-6;
    budget = Budget.unlimited;
  }

(* Refactorization policy constants: [drift_check_interval] sets how
   often the residual ‖B x_B − b‖∞ is measured (each check is O(nnz)),
   [eta_cap] bounds the product-form eta file before a hygiene
   refactorization regardless of drift. *)
let drift_check_interval = 64
let eta_cap m = max 64 (m / 2)

let pp_status ppf = function
  | Optimal s -> Format.fprintf ppf "optimal (obj = %g, %d iters)" s.objective s.iterations
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iteration_limit -> Format.pp_print_string ppf "iteration limit"
  | Deadline -> Format.pp_print_string ppf "deadline"
  | Fault msg -> Format.fprintf ppf "fault (%s)" msg

(* Persistent solver state. Columns 0..n-1 are the model's structural
   variables, n..n+m-1 the per-row slacks, and n+m.. the phase-1
   artificials (created only for rows whose slack cannot absorb the
   initial residual). The basis is held factorized behind the
   {!Basis} kernel (sparse LU with eta updates by default, explicit
   dense inverse as the selectable reference).

   The state outlives a single solve: [solve_state] optimizes cold
   (fresh slack/artificial basis), while [reoptimize] re-optimizes
   after bound or RHS changes from the current basis — the branch &
   bound hot path of the Eq. (3) MILPs. *)
type state = {
  n : int;                   (* structural variable count *)
  mutable m : int;           (* live rows: model rows + appended cut rows *)
  m_max : int;               (* row capacity reserved at assembly *)
  max_cols : int;
  mutable ncols : int;       (* n + m_max + nart *)
  col_rows : int array array;
  col_coefs : float array array;
  lb : float array;
  ub : float array;
  b : float array;
  bas : Basis.t;
  basis : int array;
  pos_in_basis : int array;
  x_b : float array;
  vals : float array;        (* value of each nonbasic column *)
  rhs_scratch : float array; (* m_max-sized: recompute_basics / drift checks *)
  nat_slb : float array;     (* natural slack bounds per row, for re-enforcement *)
  nat_sub : float array;
  n_artificial_base : int;   (* first artificial column index *)
  mutable nart : int;
  mutable rows_dirty : bool; (* rows appended since the kernel last resized *)
  cost2 : float array;       (* sign-folded phase-2 cost *)
  mutable saved_cost : float array option; (* model cost while overridden *)
  obj : Expr.t;
  params : params;
  mutable budget : Budget.t; (* replaceable between solves on one state *)
  mutable n_warm : int;
  mutable n_cold : int;
  mutable n_iters : int;
}

type state_stats = {
  warm_solves : int;
  cold_solves : int;
  lp_iterations : int;
  refactorizations : int;
  eta_updates : int;
  fill_in : int;
  drift_refreshes : int;
}

let state_stats st =
  {
    warm_solves = st.n_warm;
    cold_solves = st.n_cold;
    lp_iterations = st.n_iters;
    refactorizations = Basis.refactorizations st.bas;
    eta_updates = Basis.eta_updates st.bas;
    fill_in = Basis.fill_in st.bas;
    drift_refreshes = Basis.drift_refreshes st.bas;
  }

let col_dot st y j =
  let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
  let acc = ref 0.0 in
  for k = 0 to Array.length rows - 1 do
    acc := !acc +. (y.(rows.(k)) *. coefs.(k))
  done;
  !acc

(* w = B^-1 * A_e: scatter the sparse column, solve through the
   kernel. *)
let ftran st j w =
  Array.fill w 0 st.m 0.0;
  let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
  for k = 0 to Array.length rows - 1 do
    w.(rows.(k)) <- w.(rows.(k)) +. coefs.(k)
  done;
  Basis.ftran st.bas w

(* Dual vector y = c_B^T B^-1, i.e. B^T y = c_B: load the basic costs
   by position, btran through the kernel. *)
let dual_vector st cost y =
  for i = 0 to st.m - 1 do
    y.(i) <- cost.(st.basis.(i))
  done;
  Basis.btran st.bas y

exception Singular_basis

let factorize_basis st =
  try
    Basis.factorize st.bas ~col:(fun i ->
        let j = st.basis.(i) in
        (st.col_rows.(j), st.col_coefs.(j)))
  with Basis.Singular -> raise Singular_basis

(* rhs := b - sum over nonbasic columns of A_j v_j. *)
let effective_rhs st rhs =
  Array.blit st.b 0 rhs 0 st.m;
  for j = 0 to st.ncols - 1 do
    if st.pos_in_basis.(j) < 0 && not (Float.equal st.vals.(j) 0.0) then begin
      let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
      for k = 0 to Array.length rows - 1 do
        rhs.(rows.(k)) <- rhs.(rows.(k)) -. (coefs.(k) *. st.vals.(j))
      done
    end
  done

(* x_B = B^-1 (b - sum over nonbasic columns of A_j v_j); refreshes the
   basic values from the nonbasic assignment after bound/RHS edits. *)
let recompute_basics st =
  let rhs = st.rhs_scratch in
  effective_rhs st rhs;
  Basis.ftran st.bas rhs;
  Array.blit rhs 0 st.x_b 0 st.m

(* Measured factorization drift ‖B x_B − (b − N x_N)‖∞: how far the
   basic values produced through the (eta-extended) factors are from
   satisfying the rows they are supposed to satisfy. O(nnz of the
   live columns) — cheap enough to poll at a fixed cadence, so the
   kernel is refreshed when the error is real rather than on a blind
   iteration count. *)
let drift st =
  let m = st.m in
  let r = st.rhs_scratch in
  effective_rhs st r;
  for i = 0 to m - 1 do
    let x = st.x_b.(i) in
    if not (Float.equal x 0.0) then begin
      let j = st.basis.(i) in
      let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
      for k = 0 to Array.length rows - 1 do
        r.(rows.(k)) <- r.(rows.(k)) -. (coefs.(k) *. x)
      done
    end
  done;
  let worst = ref 0.0 in
  for i = 0 to m - 1 do
    let a = abs_float r.(i) in
    if a > !worst then worst := a
  done;
  !worst

let refactorize ?(drift_triggered = false) st =
  factorize_basis st;
  if drift_triggered then Basis.note_drift_refresh st.bas;
  recompute_basics st

(* Refactorization policy, polled once per pivot: refresh when the
   eta file outgrows its cap (hygiene), or — at the check cadence —
   when the measured residual drift exceeds the tolerance. *)
let maybe_refactorize st iter =
  if Basis.eta_count st.bas >= eta_cap st.m then refactorize st
  else if
    iter > 0
    && iter mod drift_check_interval = 0
    && drift st > st.params.drift_tol
  then refactorize ~drift_triggered:true st

(* Swap column [e] (moving in direction [dir] by step [t], with
   w = B^-1 A_e precomputed) into basis row [r]; the leaving variable
   becomes nonbasic at [leave_val]. The kernel absorbs the column
   replacement as a product-form/eta update. *)
let apply_pivot st r e dir t leave_val w =
  let m = st.m in
  let lv = st.basis.(r) in
  st.vals.(lv) <- leave_val;
  st.pos_in_basis.(lv) <- -1;
  for i = 0 to m - 1 do
    if i <> r then st.x_b.(i) <- st.x_b.(i) -. (t *. dir *. w.(i))
  done;
  st.x_b.(r) <- st.vals.(e) +. (dir *. t);
  st.basis.(r) <- e;
  st.pos_in_basis.(e) <- r;
  try Basis.update st.bas ~r ~w with Basis.Singular -> raise Singular_basis

(* Distance column [j] can travel in direction [dir] before hitting its
   own bound, measured from vals.(j) — NOT ub - lb: after
   [set_var_bounds] a clamped nonbasic may rest strictly between its
   bounds, and stepping by the full range would desynchronize x_B from
   the nonbasic assignment (or push [j] past its bound). *)
let travel_limit st j dir =
  if dir > 0.0 then
    if st.ub.(j) < infinity then max 0.0 (st.ub.(j) -. st.vals.(j)) else infinity
  else if st.lb.(j) > neg_infinity then max 0.0 (st.vals.(j) -. st.lb.(j))
  else infinity

type phase_result =
  | Phase_optimal of int
  | Phase_unbounded
  | Phase_iter_limit
  | Phase_deadline

(* Optimize the given cost vector from the current basis. *)
let optimize st cost max_iter =
  let m = st.m in
  let w = Array.make m 0.0 in
  let y = Array.make m 0.0 in
  let opt_tol = st.params.optimality_tol in
  let piv_tol = 1e-9 in
  let degen = ref 0 in
  let bland = ref false in
  let rec loop iter =
    if iter >= max_iter then Phase_iter_limit
    else if Budget.expired st.budget then Phase_deadline
    else if
      Faults.active ()
      && (Faults.checkpoint ~where:"Simplex.optimize";
          Faults.spurious_iteration_limit ())
    then Phase_iter_limit
    else begin
      maybe_refactorize st iter;
      dual_vector st cost y;
      (* Pricing: find entering column and its movement direction. *)
      let best = ref (-1) in
      let best_dir = ref 1.0 in
      let best_score = ref opt_tol in
      (try
         for j = 0 to st.ncols - 1 do
           if st.pos_in_basis.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
             let d = cost.(j) -. col_dot st y j in
             let v = st.vals.(j) in
             let at_lb = st.lb.(j) > neg_infinity && v <= st.lb.(j) +. 1e-12 in
             let at_ub = st.ub.(j) < infinity && v >= st.ub.(j) -. 1e-12 in
             let candidate_dir =
               if at_lb && at_ub then None
               else if at_lb then (if d < -.opt_tol then Some 1.0 else None)
               else if at_ub then (if d > opt_tol then Some (-1.0) else None)
               else if abs_float d > opt_tol then Some (if d < 0.0 then 1.0 else -1.0)
               else None
             in
             match candidate_dir with
             | None -> ()
             | Some dir ->
               if !bland then begin
                 best := j;
                 best_dir := dir;
                 raise Exit
               end
               else if abs_float d > !best_score then begin
                 best := j;
                 best_dir := dir;
                 best_score := abs_float d
               end
           end
         done
       with Exit -> ());
      if !best < 0 then Phase_optimal iter
      else begin
        let e = !best and dir = !best_dir in
        ftran st e w;
        (* Ratio test over the basic variables, plus the entering
           variable's own travel range to the bound it moves toward
           (a "bound flip"). *)
        let t_limit = travel_limit st e dir in
        let t_best = ref t_limit in
        let leaving = ref (-1) in
        let leaving_w = ref 0.0 in
        for i = 0 to m - 1 do
          let delta = dir *. w.(i) in
          if delta > piv_tol then begin
            let lo = st.lb.(st.basis.(i)) in
            if lo > neg_infinity then begin
              let t = (st.x_b.(i) -. lo) /. delta in
              let t = if t < 0.0 then 0.0 else t in
              if t < !t_best -. 1e-12 || (t <= !t_best && abs_float delta > abs_float !leaving_w) then begin
                t_best := t;
                leaving := i;
                leaving_w := delta
              end
            end
          end
          else if delta < -.piv_tol then begin
            let hi = st.ub.(st.basis.(i)) in
            if hi < infinity then begin
              let t = (st.x_b.(i) -. hi) /. delta in
              let t = if t < 0.0 then 0.0 else t in
              if t < !t_best -. 1e-12 || (t <= !t_best && abs_float delta > abs_float !leaving_w) then begin
                t_best := t;
                leaving := i;
                leaving_w := delta
              end
            end
          end
        done;
        if Float.equal !t_best infinity then Phase_unbounded
        else begin
          (* Fault injection: a perturbed step length models the
             numerical corruption of a near-singular pivot. *)
          let t = !t_best *. (if Faults.active () then Faults.step_scale () else 1.0) in
          if t <= st.params.feasibility_tol then incr degen else degen := 0;
          if !degen > 200 then bland := true;
          if !degen = 0 then bland := false;
          st.n_iters <- st.n_iters + 1;
          if !leaving < 0 then begin
            (* Bound flip: the entering variable travels to the bound
               in its movement direction without any basis change
               (t = travel_limit, so snapping vals is exact). *)
            st.vals.(e) <- (if dir > 0.0 then st.ub.(e) else st.lb.(e));
            for i = 0 to m - 1 do
              st.x_b.(i) <- st.x_b.(i) -. (t *. dir *. w.(i))
            done;
            loop (iter + 1)
          end
          else begin
            let r = !leaving in
            let leave_val =
              if dir *. w.(r) > 0.0 then st.lb.(st.basis.(r)) else st.ub.(st.basis.(r))
            in
            apply_pivot st r e dir t leave_val w;
            loop (iter + 1)
          end
        end
      end
    end
  in
  loop 0

let nearest_bound lb ub = if lb > neg_infinity then lb else if ub < infinity then ub else 0.0

(* ---------- assembly and cold solve ---------- *)

let assemble ?(params = default_params) ?(extra_rows = 0) model =
  if extra_rows < 0 then Invariant.invalid ~where:"Simplex.assemble" "negative extra_rows";
  let n = Model.num_vars model in
  let m = Model.num_constraints model in
  let m_max = m + extra_rows in
  let dir, obj = Model.objective model in
  let sign = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0 in
  let acc_rows = Array.make (max n 1) [] in
  let acc_coefs = Array.make (max n 1) [] in
  let b = Array.make (max m_max 1) 0.0 in
  (* Column layout: [0, n) structurals, [n, n + m_max) one slack slot
     per row of capacity (slots beyond the live rows stay fixed at
     [0,0] with an empty column, so pricing never touches them), then
     m_max artificial slots. *)
  let max_cols = n + m_max + m_max in
  let col_rows = Array.make (max max_cols 1) [||] in
  let col_coefs = Array.make (max max_cols 1) [||] in
  let lb = Array.make (max max_cols 1) 0.0 in
  let ub = Array.make (max max_cols 1) 0.0 in
  let nat_slb = Array.make (max m_max 1) 0.0 in
  let nat_sub = Array.make (max m_max 1) 0.0 in
  Model.iter_constraints model (fun i lhs rel rhs ->
      b.(i) <- rhs;
      (match rel with
      | Model.Le ->
        lb.(n + i) <- 0.0;
        ub.(n + i) <- infinity
      | Model.Ge ->
        lb.(n + i) <- neg_infinity;
        ub.(n + i) <- 0.0
      | Model.Eq ->
        lb.(n + i) <- 0.0;
        ub.(n + i) <- 0.0);
      nat_slb.(i) <- lb.(n + i);
      nat_sub.(i) <- ub.(n + i);
      List.iter
        (fun (v, c) ->
          acc_rows.(v) <- i :: acc_rows.(v);
          acc_coefs.(v) <- c :: acc_coefs.(v))
        (Expr.terms lhs));
  for v = 0 to n - 1 do
    col_rows.(v) <- Array.of_list (List.rev acc_rows.(v));
    col_coefs.(v) <- Array.of_list (List.rev acc_coefs.(v));
    lb.(v) <- Model.var_lb model v;
    ub.(v) <- Model.var_ub model v
  done;
  for i = 0 to m - 1 do
    col_rows.(n + i) <- [| i |];
    col_coefs.(n + i) <- [| 1.0 |]
  done;
  let cost2 = Array.make (max max_cols 1) 0.0 in
  for v = 0 to n - 1 do
    cost2.(v) <- sign *. Expr.coef obj v
  done;
  let params =
    if params.max_iterations > 0 then params
    else { params with max_iterations = (50 * (m + n)) + 5000 }
  in
  {
    n;
    m;
    m_max;
    max_cols;
    ncols = n + m_max;
    col_rows;
    col_coefs;
    lb;
    ub;
    b;
    bas = Basis.create params.kernel m;
    basis = Array.make (max m_max 1) (-1);
    pos_in_basis = Array.make (max max_cols 1) (-1);
    x_b = Array.make (max m_max 1) 0.0;
    vals = Array.make (max max_cols 1) 0.0;
    rhs_scratch = Array.make (max m_max 1) 0.0;
    nat_slb;
    nat_sub;
    n_artificial_base = n + m_max;
    nart = 0;
    rows_dirty = false;
    cost2;
    saved_cost = None;
    obj;
    params;
    budget = params.budget;
    n_warm = 0;
    n_cold = 0;
    n_iters = 0;
  }

(* Rebuild the initial slack/artificial basis from the current bounds
   and RHS: structurals at their nearest bound, slacks absorbing the
   row residuals where their bounds allow, artificials elsewhere. *)
let reset st =
  let n = st.n and m = st.m in
  if Basis.dim st.bas <> m then Basis.resize st.bas m;
  st.rows_dirty <- false;
  for v = 0 to n - 1 do
    st.vals.(v) <- nearest_bound st.lb.(v) st.ub.(v)
  done;
  for i = 0 to m - 1 do
    st.vals.(n + i) <- 0.0
  done;
  for j = st.n_artificial_base to st.max_cols - 1 do
    st.lb.(j) <- 0.0;
    st.ub.(j) <- 0.0;
    st.vals.(j) <- 0.0
  done;
  Array.fill st.pos_in_basis 0 st.max_cols (-1);
  let resid = Array.copy st.b in
  for v = 0 to n - 1 do
    if not (Float.equal st.vals.(v) 0.0) then begin
      let rows = st.col_rows.(v) and coefs = st.col_coefs.(v) in
      for k = 0 to Array.length rows - 1 do
        resid.(rows.(k)) <- resid.(rows.(k)) -. (coefs.(k) *. st.vals.(v))
      done
    end
  done;
  st.nart <- 0;
  for i = 0 to m - 1 do
    let slack_lb = st.lb.(n + i) and slack_ub = st.ub.(n + i) in
    if resid.(i) >= slack_lb -. 1e-12 && resid.(i) <= slack_ub +. 1e-12 then begin
      st.basis.(i) <- n + i;
      st.pos_in_basis.(n + i) <- i;
      st.x_b.(i) <- resid.(i)
    end
    else begin
      let sigma = if resid.(i) >= 0.0 then 1.0 else -1.0 in
      let j = st.n_artificial_base + st.nart in
      st.nart <- st.nart + 1;
      st.col_rows.(j) <- [| i |];
      st.col_coefs.(j) <- [| sigma |];
      st.lb.(j) <- 0.0;
      st.ub.(j) <- infinity;
      st.basis.(i) <- j;
      st.pos_in_basis.(j) <- i;
      st.x_b.(i) <- abs_float resid.(i)
    end
  done;
  st.ncols <- st.n_artificial_base + st.nart;
  (* The initial slack/artificial basis is a ±1 diagonal; factorizing
     it through the kernel is O(m) and cannot be singular. *)
  factorize_basis st

let extract_solution st ~iterations =
  let values = Array.make st.n 0.0 in
  for v = 0 to st.n - 1 do
    values.(v) <-
      (let p = st.pos_in_basis.(v) in
       if p >= 0 then st.x_b.(p) else st.vals.(v))
  done;
  { values; objective = Expr.eval (fun v -> values.(v)) st.obj; iterations }

(* Pin every artificial to [0,0]. Must hold on EVERY exit from
   [solve_state] — even infeasible ones — because a later [reoptimize]
   recomputes basic values from the same basis: an artificial left
   basic with its phase-1 range [0, inf) would silently absorb a row
   residual and certify an infeasible point as optimal. *)
let lock_artificials st =
  for j = st.n_artificial_base to st.ncols - 1 do
    st.ub.(j) <- 0.0;
    if st.pos_in_basis.(j) < 0 then st.vals.(j) <- 0.0
  done

let solve_state st =
  st.n_cold <- st.n_cold + 1;
  let iters0 = st.n_iters in
  let m = st.m in
  let run () =
    reset st;
    (* Phase 1: drive the artificials to zero. *)
    let art_total () =
      let acc = ref 0.0 in
      for i = 0 to m - 1 do
        if st.basis.(i) >= st.n_artificial_base then acc := !acc +. st.x_b.(i)
      done;
      for j = st.n_artificial_base to st.ncols - 1 do
        if st.pos_in_basis.(j) < 0 then acc := !acc +. st.vals.(j)
      done;
      !acc
    in
    let phase1_needed = st.nart > 0 && art_total () > st.params.feasibility_tol in
    let phase1 =
      if not phase1_needed then Phase_optimal 0
      else begin
        let cost1 = Array.make (max st.max_cols 1) 0.0 in
        for j = st.n_artificial_base to st.ncols - 1 do
          cost1.(j) <- 1.0
        done;
        optimize st cost1 st.params.max_iterations
      end
    in
    match phase1 with
    | Phase_iter_limit -> Iteration_limit
    | Phase_deadline -> Deadline
    | Phase_unbounded ->
      (* Phase 1 is bounded below by zero; reaching here indicates
         numerical failure. Report infeasible conservatively. *)
      Log.warn (fun k -> k "phase 1 reported unbounded: numerical trouble");
      Infeasible
    | Phase_optimal it1 ->
      if st.nart > 0 && art_total () > st.params.feasibility_tol *. 100.0 then Infeasible
      else begin
        (* Lock artificials out of the problem before phase 2. *)
        lock_artificials st;
        (* Grant phase 2 its own iteration floor: a long phase 1 must
           not leave a zero/negative budget that instantly reports
           Iteration_limit. *)
        let phase2_budget =
          max (st.params.max_iterations - it1) (100 + (st.params.max_iterations / 4))
        in
        match optimize st st.cost2 phase2_budget with
        | Phase_iter_limit -> Iteration_limit
        | Phase_deadline -> Deadline
        | Phase_unbounded -> Unbounded
        | Phase_optimal _ ->
          Optimal (extract_solution st ~iterations:(st.n_iters - iters0))
      end
  in
  let result =
    try run () with Singular_basis ->
      Log.warn (fun k -> k "singular basis encountered");
      Infeasible
  in
  lock_artificials st;
  (* Fault injection: with the injector armed, an optimal exit may be
     forged into an infeasibility verdict — the lie a broken phase 1
     would tell. *)
  match result with
  | Optimal _ when Faults.active () && Faults.forge_infeasible () -> Infeasible
  | r -> r

(* ---------- bound / RHS edits and warm re-optimization ---------- *)

let set_var_bounds st v ~lb ~ub =
  if v < 0 || v >= st.n then Invariant.invalid ~where:"Simplex.set_var_bounds" "not a structural var";
  if lb > ub then Invariant.invalid ~where:"Simplex.set_var_bounds" "lb > ub";
  st.lb.(v) <- lb;
  st.ub.(v) <- ub;
  if st.pos_in_basis.(v) < 0 then begin
    let x = st.vals.(v) in
    st.vals.(v) <- (if x < lb then lb else if x > ub then ub else x)
  end

let set_rhs st i rhs =
  if i < 0 || i >= st.m then Invariant.invalid ~where:"Simplex.set_rhs" "bad row";
  st.b.(i) <- rhs

let set_budget st budget = st.budget <- budget

(* ---------- in-place row append (cutting planes) ---------- *)

let num_rows st = st.m
let row_capacity st = st.m_max
let structural_count st = st.n

(* Append one inequality row into a reserved slot without
   re-assembling: entries go to the touched structural columns, the
   row's slack slot is activated and made basic in the new row, and
   the state is flagged so the next [reoptimize] resizes the kernel
   and refactorizes before touching the factors. Making the slack
   basic keeps the appended basis block-triangular over the old one,
   so warmth is preserved: one refactorization plus a dual-simplex
   repair of the (possibly bound-violated) new slack. *)
let add_row st ~terms ~rel ~rhs =
  let i = st.m in
  if i >= st.m_max then
    Invariant.invalid ~where:"Simplex.add_row" "row capacity exhausted (%d rows)" st.m_max;
  if not (Float.is_finite rhs) then
    Invariant.invalid ~where:"Simplex.add_row" "non-finite rhs";
  (* Coalesce duplicate variables: the kernels scatter column entries
     with assignment, so a (row, col) pair must appear at most once. *)
  let terms =
    List.sort (fun (a, _) (b, _) -> compare (a : int) b) terms
    |> List.fold_left
         (fun acc (v, c) ->
           match acc with
           | (v', c') :: rest when v' = v -> (v', c' +. c) :: rest
           | _ -> (v, c) :: acc)
         []
  in
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= st.n then
        Invariant.invalid ~where:"Simplex.add_row" "term on non-structural column %d" v;
      if not (Float.is_finite c) then
        Invariant.invalid ~where:"Simplex.add_row" "non-finite coefficient on %d" v)
    terms;
  List.iter
    (fun (v, c) ->
      if not (Float.equal c 0.0) then begin
        st.col_rows.(v) <- Array.append st.col_rows.(v) [| i |];
        st.col_coefs.(v) <- Array.append st.col_coefs.(v) [| c |]
      end)
    terms;
  let j = st.n + i in
  let slb, sub =
    match rel with
    | Model.Le -> (0.0, infinity)
    | Model.Ge -> (neg_infinity, 0.0)
    | Model.Eq -> Invariant.invalid ~where:"Simplex.add_row" "only inequality rows can be appended"
  in
  st.col_rows.(j) <- [| i |];
  st.col_coefs.(j) <- [| 1.0 |];
  st.lb.(j) <- slb;
  st.ub.(j) <- sub;
  st.nat_slb.(i) <- slb;
  st.nat_sub.(i) <- sub;
  st.vals.(j) <- 0.0;
  st.b.(i) <- rhs;
  st.basis.(i) <- j;
  st.pos_in_basis.(j) <- i;
  st.m <- i + 1;
  st.rows_dirty <- true;
  i

(* Enforce / relax a row by its slack bounds: a relaxed row keeps its
   slot in the factorization (no renumbering, warmth preserved) but
   its free slack absorbs any violation, so it can never bind. This is
   how the cut pool deactivates aged-out cuts. *)
let set_row_enforced st i enforced =
  if i < 0 || i >= st.m then Invariant.invalid ~where:"Simplex.set_row_enforced" "bad row";
  let j = st.n + i in
  if enforced then begin
    st.lb.(j) <- st.nat_slb.(i);
    st.ub.(j) <- st.nat_sub.(i);
    if st.pos_in_basis.(j) < 0 then begin
      let x = st.vals.(j) in
      st.vals.(j) <- (if x < st.lb.(j) then st.lb.(j) else if x > st.ub.(j) then st.ub.(j) else x)
    end
  end
  else begin
    st.lb.(j) <- neg_infinity;
    st.ub.(j) <- infinity
  end

(* ---------- objective override (feasibility pump) ---------- *)

(* Replace the minimized cost vector with an arbitrary linear form
   over the structural variables, saving the model cost for
   [reset_cost]. Solutions extracted while the override is active
   still report the MODEL objective (the pump wants the point, not
   the distance value). *)
let set_cost st terms =
  (match st.saved_cost with
  | Some _ -> ()
  | None -> st.saved_cost <- Some (Array.copy st.cost2));
  Array.fill st.cost2 0 st.max_cols 0.0;
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= st.n then
        Invariant.invalid ~where:"Simplex.set_cost" "term on non-structural column %d" v;
      st.cost2.(v) <- c)
    terms

let reset_cost st =
  match st.saved_cost with
  | None -> ()
  | Some c ->
    Array.blit c 0 st.cost2 0 st.max_cols;
    st.saved_cost <- None

(* ---------- basis introspection (cut separation) ---------- *)

let basis_column st i =
  if i < 0 || i >= st.m then Invariant.invalid ~where:"Simplex.basis_column" "bad position";
  st.basis.(i)

let column_position st j =
  if j < 0 || j >= st.max_cols then Invariant.invalid ~where:"Simplex.column_position" "bad column";
  st.pos_in_basis.(j)

let column_value st j =
  if j < 0 || j >= st.max_cols then Invariant.invalid ~where:"Simplex.column_value" "bad column";
  let p = st.pos_in_basis.(j) in
  if p >= 0 then st.x_b.(p) else st.vals.(j)

let column_bounds st j =
  if j < 0 || j >= st.max_cols then Invariant.invalid ~where:"Simplex.column_bounds" "bad column";
  (st.lb.(j), st.ub.(j))

(* Row [pos] of B⁻¹A over the nonbasic columns — the raw material of a
   Gomory cut. Only meaningful against live factors: the caller must
   hold an optimal (or at least factorized) basis with no pending row
   appends. *)
let tableau_row st ~pos =
  if pos < 0 || pos >= st.m then Invariant.invalid ~where:"Simplex.tableau_row" "bad position";
  if st.rows_dirty then
    Invariant.invalid ~where:"Simplex.tableau_row" "rows appended since last factorization";
  let brow = Array.make st.m 0.0 in
  Basis.btran_unit st.bas pos brow;
  let acc = ref [] in
  for j = st.ncols - 1 downto 0 do
    if st.pos_in_basis.(j) < 0 then begin
      let a = col_dot st brow j in
      if abs_float a > 1e-11 then acc := (j, a) :: !acc
    end
  done;
  !acc

type dual_result = Dual_feasible | Dual_infeasible | Dual_stall | Dual_deadline

(* Dual-simplex-style recovery: restore primal feasibility of the
   basic values from the current basis, picking leaving rows by worst
   bound violation and entering columns by the dual ratio test. A
   certified "no eligible entering column" (or a too-small pivot) is
   only trusted against clean factors: if the kernel carries eta
   updates or measurable residual drift, it is refactorized once and
   the verdict re-derived — a fresh drift-free factorization passes
   straight through instead of paying the old unconditional dense
   refresh. *)
let dual_restore st =
  let m = st.m in
  if m = 0 then Dual_feasible
  else begin
    let feas_tol = st.params.feasibility_tol in
    let piv_tol = 1e-9 in
    let w = Array.make m 0.0 in
    let y = Array.make m 0.0 in
    let brow = Array.make m 0.0 in
    let max_iter = (4 * (m + 1)) + 200 in
    let rec loop iter refreshed =
      (* Eta-file hygiene before the violation scan: refreshing here
         also re-derives x_B, so the leaving-row choice below is made
         against the clean factors. *)
      if Basis.eta_count st.bas >= eta_cap m then refactorize st;
      let r = ref (-1) and worst = ref feas_tol in
      for i = 0 to m - 1 do
        let j = st.basis.(i) in
        let v =
          if st.x_b.(i) < st.lb.(j) then st.lb.(j) -. st.x_b.(i)
          else if st.x_b.(i) > st.ub.(j) then st.x_b.(i) -. st.ub.(j)
          else 0.0
        in
        if v > !worst then begin
          r := i;
          worst := v
        end
      done;
      if !r < 0 then Dual_feasible
      else if iter >= max_iter then Dual_stall
      else if Budget.expired st.budget then Dual_deadline
      else begin
        if Faults.active () then Faults.checkpoint ~where:"Simplex.dual_restore";
        let r = !r in
        let lv = st.basis.(r) in
        let below = st.x_b.(r) < st.lb.(lv) in
        let target = if below then st.lb.(lv) else st.ub.(lv) in
        dual_vector st st.cost2 y;
        Basis.btran_unit st.bas r brow;
        let best = ref (-1) in
        let best_ratio = ref infinity in
        let best_alpha = ref 0.0 in
        let best_dir = ref 1.0 in
        for j = 0 to st.ncols - 1 do
          if st.pos_in_basis.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
            let alpha = col_dot st brow j in
            if abs_float alpha > piv_tol then begin
              let v = st.vals.(j) in
              let at_lb = st.lb.(j) > neg_infinity && v <= st.lb.(j) +. 1e-12 in
              let at_ub = st.ub.(j) < infinity && v >= st.ub.(j) -. 1e-12 in
              (* x_b(r) moves by -(dir * alpha) per unit step of j. *)
              let dir =
                if at_lb && at_ub then 0.0
                else if at_lb then (if (if below then -.alpha else alpha) > 0.0 then 1.0 else 0.0)
                else if at_ub then (if (if below then alpha else -.alpha) > 0.0 then -1.0 else 0.0)
                else if below then (if alpha < 0.0 then 1.0 else -1.0)
                else if alpha > 0.0 then 1.0
                else -1.0
              in
              if not (Float.equal dir 0.0) then begin
                let d = st.cost2.(j) -. col_dot st y j in
                let ratio = abs_float d /. abs_float alpha in
                if
                  ratio < !best_ratio -. 1e-12
                  || (ratio <= !best_ratio +. 1e-12 && abs_float alpha > abs_float !best_alpha)
                then begin
                  best := j;
                  best_ratio := ratio;
                  best_alpha := alpha;
                  best_dir := dir
                end
              end
            end
          end
        done;
        (* Residual-drift gate on suspicious verdicts: accept them
           outright from clean factors (no etas, measured drift within
           tolerance); otherwise refactorize once — counted as a drift
           refresh when drift was the reason — and re-derive. *)
        let confirm verdict k =
          if refreshed then verdict
          else begin
            let drifted = drift st > st.params.drift_tol in
            if (not drifted) && Basis.eta_count st.bas = 0 then verdict
            else begin
              refactorize ~drift_triggered:drifted st;
              k ()
            end
          end
        in
        if !best < 0 then confirm Dual_infeasible (fun () -> loop iter true)
        else begin
          let e = !best and dir = !best_dir in
          ftran st e w;
          if abs_float w.(r) < piv_tol then
            confirm Dual_stall (fun () -> loop iter true)
          else begin
            let t = (st.x_b.(r) -. target) /. (dir *. w.(r)) in
            let t = if t < 0.0 then 0.0 else t in
            let range = travel_limit st e dir in
            st.n_iters <- st.n_iters + 1;
            if range < t then begin
              (* The entering variable hits the bound in its movement
                 direction before the leaving row reaches feasibility:
                 bound flip (range = travel_limit, snap is exact). *)
              st.vals.(e) <- (if dir > 0.0 then st.ub.(e) else st.lb.(e));
              for i = 0 to m - 1 do
                st.x_b.(i) <- st.x_b.(i) -. (range *. dir *. w.(i))
              done;
              loop (iter + 1) refreshed
            end
            else begin
              apply_pivot st r e dir t target w;
              loop (iter + 1) refreshed
            end
          end
        end
      end
    in
    loop 0 false
  end

let reoptimize st =
  if st.n_warm = 0 && st.n_cold = 0 then solve_state st
  else begin
    let iters0 = st.n_iters in
    let attempt () =
      (* Rows appended since the last (re)factorization: grow the
         kernel and refactor before any ftran/btran. The appended
         basis is block-triangular over the old one — [[B old, 0],
         [r, 1]] with the new slack unit-basic in the new row — so a
         previously nonsingular basis stays nonsingular. *)
      if st.rows_dirty then begin
        Basis.resize st.bas st.m;
        st.rows_dirty <- false;
        factorize_basis st
      end;
      recompute_basics st;
      match dual_restore st with
      | Dual_infeasible -> Some Infeasible
      | Dual_stall -> None
      | Dual_deadline -> Some Deadline
      | Dual_feasible -> (
        match optimize st st.cost2 st.params.max_iterations with
        | Phase_iter_limit -> Some Iteration_limit
        | Phase_deadline -> Some Deadline
        | Phase_unbounded -> Some Unbounded
        | Phase_optimal _ ->
          Some (Optimal (extract_solution st ~iterations:(st.n_iters - iters0))))
    in
    match (try attempt () with Singular_basis -> None) with
    | Some status ->
      st.n_warm <- st.n_warm + 1;
      (match status with
      | Optimal _ when Faults.active () && Faults.forge_infeasible () -> Infeasible
      | s -> s)
    | None ->
      (* Numerical trouble along the warm path: fall back to a cold
         solve from a fresh slack/artificial basis. *)
      Log.debug (fun k -> k "warm re-optimization stalled; cold restart");
      solve_state st
  end

(* ---------- one-shot entry point ---------- *)

let solve ?(params = default_params) model =
  let n = Model.num_vars model in
  let m = Model.num_constraints model in
  let dir, obj = Model.objective model in
  let sign = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0 in
  if m = 0 then begin
    (* No constraints: each variable sits at its cost-optimal bound. *)
    let values = Array.make n 0.0 in
    let unbounded = ref false in
    for v = 0 to n - 1 do
      let c = sign *. Expr.coef obj v in
      let lo = Model.var_lb model v and hi = Model.var_ub model v in
      if c > 0.0 then
        if lo > neg_infinity then values.(v) <- lo else unbounded := true
      else if c < 0.0 then
        if hi < infinity then values.(v) <- hi else unbounded := true
      else values.(v) <- nearest_bound lo hi
    done;
    if !unbounded then Unbounded
    else
      Optimal
        { values; objective = Expr.eval (fun v -> values.(v)) obj; iterations = 0 }
  end
  else solve_state (assemble ~params model)
