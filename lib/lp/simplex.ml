let src = Logs.Src.create "agingfp.simplex" ~doc:"LP simplex solver"

module Log = (val Logs.src_log src : Logs.LOG)

type solution = { values : float array; objective : float; iterations : int }

type status = Optimal of solution | Infeasible | Unbounded | Iteration_limit

type params = {
  max_iterations : int;
  feasibility_tol : float;
  optimality_tol : float;
  refactor_every : int;
}

let default_params =
  {
    max_iterations = 0;
    feasibility_tol = 1e-7;
    optimality_tol = 1e-7;
    refactor_every = 500;
  }

let pp_status ppf = function
  | Optimal s -> Format.fprintf ppf "optimal (obj = %g, %d iters)" s.objective s.iterations
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iteration_limit -> Format.pp_print_string ppf "iteration limit"

(* Internal solver state. Columns 0..n-1 are the model's structural
   variables, n..n+m-1 the per-row slacks, and n+m.. the phase-1
   artificials (created only for rows whose slack cannot absorb the
   initial residual). The basis inverse is dense. *)
type state = {
  m : int;
  ncols : int;
  col_rows : int array array;
  col_coefs : float array array;
  lb : float array;
  ub : float array;
  b : float array;
  binv : float array array;
  basis : int array;
  pos_in_basis : int array;
  x_b : float array;
  vals : float array;        (* value of each nonbasic column *)
  n_artificial_base : int;   (* first artificial column index *)
  params : params;
}

let col_dot st y j =
  let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
  let acc = ref 0.0 in
  for k = 0 to Array.length rows - 1 do
    acc := !acc +. (y.(rows.(k)) *. coefs.(k))
  done;
  !acc

(* w = B^-1 * A_e *)
let ftran st j w =
  Array.fill w 0 st.m 0.0;
  let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
  for k = 0 to Array.length rows - 1 do
    let r = rows.(k) and a = coefs.(k) in
    if a <> 0.0 then
      for i = 0 to st.m - 1 do
        w.(i) <- w.(i) +. (st.binv.(i).(r) *. a)
      done
  done

exception Singular_basis

(* Recompute B^-1 from scratch by Gauss-Jordan and refresh the basic
   values from the nonbasic assignment; fights numerical drift. *)
let refactorize st =
  let m = st.m in
  let bmat = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    let j = st.basis.(i) in
    let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
    for k = 0 to Array.length rows - 1 do
      bmat.(rows.(k)).(i) <- coefs.(k)
    done
  done;
  let inv = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    inv.(i).(i) <- 1.0
  done;
  for k = 0 to m - 1 do
    let piv = ref k in
    for i = k + 1 to m - 1 do
      if abs_float bmat.(i).(k) > abs_float bmat.(!piv).(k) then piv := i
    done;
    if abs_float bmat.(!piv).(k) < 1e-11 then raise Singular_basis;
    if !piv <> k then begin
      let t = bmat.(k) in
      bmat.(k) <- bmat.(!piv);
      bmat.(!piv) <- t;
      let t = inv.(k) in
      inv.(k) <- inv.(!piv);
      inv.(!piv) <- t
    end;
    let d = bmat.(k).(k) in
    for c = 0 to m - 1 do
      bmat.(k).(c) <- bmat.(k).(c) /. d;
      inv.(k).(c) <- inv.(k).(c) /. d
    done;
    for i = 0 to m - 1 do
      if i <> k then begin
        let f = bmat.(i).(k) in
        if f <> 0.0 then
          for c = 0 to m - 1 do
            bmat.(i).(c) <- bmat.(i).(c) -. (f *. bmat.(k).(c));
            inv.(i).(c) <- inv.(i).(c) -. (f *. inv.(k).(c))
          done
      end
    done
  done;
  for i = 0 to m - 1 do
    Array.blit inv.(i) 0 st.binv.(i) 0 m
  done;
  (* x_B = B^-1 (b - sum over nonbasic columns of A_j v_j) *)
  let rhs = Array.copy st.b in
  for j = 0 to st.ncols - 1 do
    if st.pos_in_basis.(j) < 0 && st.vals.(j) <> 0.0 then begin
      let rows = st.col_rows.(j) and coefs = st.col_coefs.(j) in
      for k = 0 to Array.length rows - 1 do
        rhs.(rows.(k)) <- rhs.(rows.(k)) -. (coefs.(k) *. st.vals.(j))
      done
    end
  done;
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    for r = 0 to m - 1 do
      acc := !acc +. (st.binv.(i).(r) *. rhs.(r))
    done;
    st.x_b.(i) <- !acc
  done

type phase_result = Phase_optimal of int | Phase_unbounded | Phase_iter_limit

(* Optimize the given cost vector from the current basis. *)
let optimize st cost max_iter =
  let m = st.m in
  let w = Array.make m 0.0 in
  let y = Array.make m 0.0 in
  let opt_tol = st.params.optimality_tol in
  let piv_tol = 1e-9 in
  let degen = ref 0 in
  let bland = ref false in
  let rec loop iter =
    if iter >= max_iter then Phase_iter_limit
    else begin
      if iter > 0 && iter mod st.params.refactor_every = 0 then refactorize st;
      (* Dual vector y = c_B^T B^-1. *)
      Array.fill y 0 m 0.0;
      for i = 0 to m - 1 do
        let cb = cost.(st.basis.(i)) in
        if cb <> 0.0 then begin
          let row = st.binv.(i) in
          for k = 0 to m - 1 do
            y.(k) <- y.(k) +. (cb *. row.(k))
          done
        end
      done;
      (* Pricing: find entering column and its movement direction. *)
      let best = ref (-1) in
      let best_dir = ref 1.0 in
      let best_score = ref opt_tol in
      (try
         for j = 0 to st.ncols - 1 do
           if st.pos_in_basis.(j) < 0 && st.lb.(j) < st.ub.(j) then begin
             let d = cost.(j) -. col_dot st y j in
             let v = st.vals.(j) in
             let at_lb = st.lb.(j) > neg_infinity && v <= st.lb.(j) +. 1e-12 in
             let at_ub = st.ub.(j) < infinity && v >= st.ub.(j) -. 1e-12 in
             let candidate_dir =
               if at_lb && at_ub then None
               else if at_lb then (if d < -.opt_tol then Some 1.0 else None)
               else if at_ub then (if d > opt_tol then Some (-1.0) else None)
               else if abs_float d > opt_tol then Some (if d < 0.0 then 1.0 else -1.0)
               else None
             in
             match candidate_dir with
             | None -> ()
             | Some dir ->
               if !bland then begin
                 best := j;
                 best_dir := dir;
                 raise Exit
               end
               else if abs_float d > !best_score then begin
                 best := j;
                 best_dir := dir;
                 best_score := abs_float d
               end
           end
         done
       with Exit -> ());
      if !best < 0 then Phase_optimal iter
      else begin
        let e = !best and dir = !best_dir in
        ftran st e w;
        (* Ratio test over the basic variables, plus the entering
           variable's own bound range (a "bound flip"). *)
        let t_limit =
          if st.lb.(e) > neg_infinity && st.ub.(e) < infinity then st.ub.(e) -. st.lb.(e)
          else infinity
        in
        let t_best = ref t_limit in
        let leaving = ref (-1) in
        let leaving_w = ref 0.0 in
        for i = 0 to m - 1 do
          let delta = dir *. w.(i) in
          if delta > piv_tol then begin
            let lo = st.lb.(st.basis.(i)) in
            if lo > neg_infinity then begin
              let t = (st.x_b.(i) -. lo) /. delta in
              let t = if t < 0.0 then 0.0 else t in
              if t < !t_best -. 1e-12 || (t <= !t_best && abs_float delta > abs_float !leaving_w) then begin
                t_best := t;
                leaving := i;
                leaving_w := delta
              end
            end
          end
          else if delta < -.piv_tol then begin
            let hi = st.ub.(st.basis.(i)) in
            if hi < infinity then begin
              let t = (st.x_b.(i) -. hi) /. delta in
              let t = if t < 0.0 then 0.0 else t in
              if t < !t_best -. 1e-12 || (t <= !t_best && abs_float delta > abs_float !leaving_w) then begin
                t_best := t;
                leaving := i;
                leaving_w := delta
              end
            end
          end
        done;
        if !t_best = infinity then Phase_unbounded
        else begin
          let t = !t_best in
          if t <= st.params.feasibility_tol then incr degen else degen := 0;
          if !degen > 200 then bland := true;
          if !degen = 0 then bland := false;
          if !leaving < 0 then begin
            (* Bound flip: the entering variable crosses to its other
               bound without any basis change. *)
            st.vals.(e) <- (if dir > 0.0 then st.ub.(e) else st.lb.(e));
            for i = 0 to m - 1 do
              st.x_b.(i) <- st.x_b.(i) -. (t *. dir *. w.(i))
            done;
            loop (iter + 1)
          end
          else begin
            let r = !leaving in
            let lv = st.basis.(r) in
            let leave_val = if dir *. w.(r) > 0.0 then st.lb.(lv) else st.ub.(lv) in
            st.vals.(lv) <- leave_val;
            st.pos_in_basis.(lv) <- -1;
            for i = 0 to m - 1 do
              if i <> r then st.x_b.(i) <- st.x_b.(i) -. (t *. dir *. w.(i))
            done;
            st.x_b.(r) <- st.vals.(e) +. (dir *. t);
            st.basis.(r) <- e;
            st.pos_in_basis.(e) <- r;
            (* Product-form update of B^-1. *)
            let wr = w.(r) in
            let row_r = st.binv.(r) in
            for k = 0 to m - 1 do
              row_r.(k) <- row_r.(k) /. wr
            done;
            for i = 0 to m - 1 do
              if i <> r && w.(i) <> 0.0 then begin
                let f = w.(i) in
                let row_i = st.binv.(i) in
                for k = 0 to m - 1 do
                  row_i.(k) <- row_i.(k) -. (f *. row_r.(k))
                done
              end
            done;
            loop (iter + 1)
          end
        end
      end
    end
  in
  loop 0

let nearest_bound lb ub = if lb > neg_infinity then lb else if ub < infinity then ub else 0.0

let solve ?(params = default_params) model =
  let n = Model.num_vars model in
  let m = Model.num_constraints model in
  let dir, obj = Model.objective model in
  let sign = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0 in
  if m = 0 then begin
    (* No constraints: each variable sits at its cost-optimal bound. *)
    let values = Array.make n 0.0 in
    let unbounded = ref false in
    for v = 0 to n - 1 do
      let c = sign *. Expr.coef obj v in
      let lo = Model.var_lb model v and hi = Model.var_ub model v in
      if c > 0.0 then
        if lo > neg_infinity then values.(v) <- lo else unbounded := true
      else if c < 0.0 then
        if hi < infinity then values.(v) <- hi else unbounded := true
      else values.(v) <- nearest_bound lo hi
    done;
    if !unbounded then Unbounded
    else
      Optimal
        { values; objective = Expr.eval (fun v -> values.(v)) obj; iterations = 0 }
  end
  else begin
    (* Assemble sparse structural columns. *)
    let acc_rows = Array.make n [] in
    let acc_coefs = Array.make n [] in
    let b = Array.make m 0.0 in
    let slack_lb = Array.make m 0.0 in
    let slack_ub = Array.make m 0.0 in
    Model.iter_constraints model (fun i lhs rel rhs ->
        b.(i) <- rhs;
        (match rel with
        | Model.Le ->
          slack_lb.(i) <- 0.0;
          slack_ub.(i) <- infinity
        | Model.Ge ->
          slack_lb.(i) <- neg_infinity;
          slack_ub.(i) <- 0.0
        | Model.Eq ->
          slack_lb.(i) <- 0.0;
          slack_ub.(i) <- 0.0);
        List.iter
          (fun (v, c) ->
            acc_rows.(v) <- i :: acc_rows.(v);
            acc_coefs.(v) <- c :: acc_coefs.(v))
          (Expr.terms lhs));
    (* Column table: structural, slack, then artificials (filled below). *)
    let max_cols = n + m + m in
    let col_rows = Array.make max_cols [||] in
    let col_coefs = Array.make max_cols [||] in
    let lb = Array.make max_cols 0.0 in
    let ub = Array.make max_cols 0.0 in
    for v = 0 to n - 1 do
      col_rows.(v) <- Array.of_list (List.rev acc_rows.(v));
      col_coefs.(v) <- Array.of_list (List.rev acc_coefs.(v));
      lb.(v) <- Model.var_lb model v;
      ub.(v) <- Model.var_ub model v
    done;
    for i = 0 to m - 1 do
      col_rows.(n + i) <- [| i |];
      col_coefs.(n + i) <- [| 1.0 |];
      lb.(n + i) <- slack_lb.(i);
      ub.(n + i) <- slack_ub.(i)
    done;
    let vals = Array.make max_cols 0.0 in
    for v = 0 to n - 1 do
      vals.(v) <- nearest_bound lb.(v) ub.(v)
    done;
    (* Residual of each row once structurals sit at their initial
       bounds; the slack absorbs it when its bounds allow, otherwise
       an artificial variable is created. *)
    let resid = Array.copy b in
    for v = 0 to n - 1 do
      if vals.(v) <> 0.0 then begin
        let rows = col_rows.(v) and coefs = col_coefs.(v) in
        for k = 0 to Array.length rows - 1 do
          resid.(rows.(k)) <- resid.(rows.(k)) -. (coefs.(k) *. vals.(v))
        done
      end
    done;
    let basis = Array.make m (-1) in
    let pos_in_basis = Array.make max_cols (-1) in
    let x_b = Array.make m 0.0 in
    let n_art = ref 0 in
    let binv = Array.make_matrix m m 0.0 in
    for i = 0 to m - 1 do
      if resid.(i) >= slack_lb.(i) -. 1e-12 && resid.(i) <= slack_ub.(i) +. 1e-12 then begin
        basis.(i) <- n + i;
        pos_in_basis.(n + i) <- i;
        x_b.(i) <- resid.(i);
        binv.(i).(i) <- 1.0
      end
      else begin
        let sigma = if resid.(i) >= 0.0 then 1.0 else -1.0 in
        let j = n + m + !n_art in
        incr n_art;
        col_rows.(j) <- [| i |];
        col_coefs.(j) <- [| sigma |];
        lb.(j) <- 0.0;
        ub.(j) <- infinity;
        basis.(i) <- j;
        pos_in_basis.(j) <- i;
        x_b.(i) <- abs_float resid.(i);
        binv.(i).(i) <- sigma
      end
    done;
    let ncols = n + m + !n_art in
    let params =
      if params.max_iterations > 0 then params
      else { params with max_iterations = (50 * (m + n)) + 5000 }
    in
    let st =
      {
        m;
        ncols;
        col_rows;
        col_coefs;
        lb;
        ub;
        b;
        binv;
        basis;
        pos_in_basis;
        x_b;
        vals;
        n_artificial_base = n + m;
        params;
      }
    in
    let run () =
      (* Phase 1: drive the artificials to zero. *)
      let art_total () =
        let acc = ref 0.0 in
        for i = 0 to m - 1 do
          if st.basis.(i) >= st.n_artificial_base then acc := !acc +. st.x_b.(i)
        done;
        for j = st.n_artificial_base to ncols - 1 do
          if st.pos_in_basis.(j) < 0 then acc := !acc +. st.vals.(j)
        done;
        !acc
      in
      let phase1_needed = !n_art > 0 && art_total () > st.params.feasibility_tol in
      let phase1 =
        if not phase1_needed then Phase_optimal 0
        else begin
          let cost1 = Array.make ncols 0.0 in
          for j = st.n_artificial_base to ncols - 1 do
            cost1.(j) <- 1.0
          done;
          optimize st cost1 st.params.max_iterations
        end
      in
      match phase1 with
      | Phase_iter_limit -> Iteration_limit
      | Phase_unbounded ->
        (* Phase 1 is bounded below by zero; reaching here indicates
           numerical failure. Report infeasible conservatively. *)
        Log.warn (fun k -> k "phase 1 reported unbounded: numerical trouble");
        Infeasible
      | Phase_optimal it1 ->
        if !n_art > 0 && art_total () > st.params.feasibility_tol *. 100.0 then Infeasible
        else begin
          (* Lock artificials out of the problem. *)
          for j = st.n_artificial_base to ncols - 1 do
            st.ub.(j) <- 0.0;
            if st.pos_in_basis.(j) < 0 then st.vals.(j) <- 0.0
          done;
          let cost2 = Array.make ncols 0.0 in
          for v = 0 to n - 1 do
            cost2.(v) <- sign *. Expr.coef obj v
          done;
          match optimize st cost2 (st.params.max_iterations - it1) with
          | Phase_iter_limit -> Iteration_limit
          | Phase_unbounded -> Unbounded
          | Phase_optimal it2 ->
            let values = Array.make n 0.0 in
            for v = 0 to n - 1 do
              values.(v) <-
                (let p = st.pos_in_basis.(v) in
                 if p >= 0 then st.x_b.(p) else st.vals.(v))
            done;
            Optimal
              {
                values;
                objective = Expr.eval (fun v -> values.(v)) obj;
                iterations = it1 + it2;
              }
        end
    in
    try run () with Singular_basis ->
      Log.warn (fun k -> k "singular basis encountered");
      Infeasible
  end
