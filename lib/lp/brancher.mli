(** Branching-variable selection: most-fractional or pseudocost.

    Pseudocost branching keeps per-variable, per-direction averages of
    the LP objective degradation per unit of rounded-away fraction and
    picks the candidate maximizing the product of its estimated
    up/down degradations. Variables with fewer than [reliability]
    observations in either direction are {!unreliable}: the search
    seeds them with strong-branching probes at shallow depth, feeding
    each probe's delta back through {!observe}.

    Selection is deterministic (ties break on candidate order, i.e.
    variable index); state is guarded by the caller's search mutex. *)

type rule = Most_fractional | Pseudocost

val rule_to_string : rule -> string
val rule_of_string : string -> rule option
val pp_rule : Format.formatter -> rule -> unit

type t

val create : ?reliability:int -> rule -> nvars:int -> t
(** [reliability] (default 1) is the per-direction observation count
    at which a variable's pseudocost is trusted without probing. *)

val rule : t -> rule

val fractional : integrality_tol:float -> int list -> float array -> (int * float) list
(** [(var, relaxed value)] for every integer variable whose value sits
    more than [integrality_tol] from an integer, in input order. *)

val unreliable : t -> var:int -> bool
(** True under [Pseudocost] while [var] lacks observations in either
    direction — a strong-branching probe is worth its LP solves. *)

val observe : t -> var:int -> dir:Node_store.dir -> frac:float -> delta:float -> unit
(** Record that rounding [var] by [frac] in [dir] degraded the
    relaxation objective (minimize-sign space) by [delta]. Non-finite
    deltas and vanishing fractions are ignored. *)

val score : t -> var:int -> value:float -> float
(** The pseudocost product score of branching on [var] at relaxed
    [value]; falls back to the fractionality when unobserved. *)

val select : t -> (int * float) list -> int option
(** The branching variable among [candidates] under the rule; [None]
    iff the list is empty. *)
