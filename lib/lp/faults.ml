module Rng = Agingfp_util.Rng

exception Injected of string

type spec = {
  seed : int;
  p_iteration_limit : float;
  p_perturb : float;
  perturb_mag : float;
  p_infeasible : float;
  p_exception : float;
}

let none =
  {
    seed = 0;
    p_iteration_limit = 0.0;
    p_perturb = 0.0;
    perturb_mag = 0.05;
    p_infeasible = 0.0;
    p_exception = 0.0;
  }

type fired = {
  iteration_limits : int;
  perturbations : int;
  infeasibilities : int;
  exceptions : int;
}

let no_fired =
  { iteration_limits = 0; perturbations = 0; infeasibilities = 0; exceptions = 0 }

type injector = { spec : spec; rng : Rng.t; mutable counts : fired }

(* Process-global; [armed] is the only thing the solver hot path reads
   when injection is off. *)
let state : injector option ref = ref None
let armed = ref false

let install spec =
  if spec = none then begin
    state := None;
    armed := false
  end
  else begin
    state := Some { spec; rng = Rng.create spec.seed; counts = no_fired };
    armed := true
  end

let clear () =
  state := None;
  armed := false

let active () = !armed

let fired () = match !state with Some i -> i.counts | None -> no_fired

let with_spec spec f =
  install spec;
  Fun.protect ~finally:clear f

(* A Bernoulli draw only consumes randomness when the probability is
   positive, so enabling one fault class does not shift another
   class's stream. *)
let draw inj p = p > 0.0 && Rng.float inj.rng 1.0 < p

let checkpoint ~where =
  if !armed then
    match !state with
    | Some inj when draw inj inj.spec.p_exception ->
      inj.counts <- { inj.counts with exceptions = inj.counts.exceptions + 1 };
      raise (Injected where)
    | _ -> ()

let spurious_iteration_limit () =
  !armed
  &&
  match !state with
  | Some inj when draw inj inj.spec.p_iteration_limit ->
    inj.counts <- { inj.counts with iteration_limits = inj.counts.iteration_limits + 1 };
    true
  | _ -> false

let step_scale () =
  if not !armed then 1.0
  else
    match !state with
    | Some inj when draw inj inj.spec.p_perturb ->
      inj.counts <- { inj.counts with perturbations = inj.counts.perturbations + 1 };
      let mag = Rng.float inj.rng inj.spec.perturb_mag in
      if Rng.bool inj.rng then 1.0 +. mag else 1.0 -. mag
    | _ -> 1.0

let forge_infeasible () =
  !armed
  &&
  match !state with
  | Some inj when draw inj inj.spec.p_infeasible ->
    inj.counts <- { inj.counts with infeasibilities = inj.counts.infeasibilities + 1 };
    true
  | _ -> false

(* ---------- CLI spec syntax ---------- *)

let to_string s =
  Printf.sprintf "seed=%d,iter=%g,pivot=%g,mag=%g,infeas=%g,raise=%g" s.seed
    s.p_iteration_limit s.p_perturb s.perturb_mag s.p_infeasible s.p_exception

let of_string str =
  let parse_field spec field =
    let field = String.trim field in
    if field = "" then Ok spec
    else
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "bad fault field %S (want key=value)" field)
      | Some i -> (
        let key = String.trim (String.sub field 0 i) in
        let value = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
        let prob k =
          match float_of_string_opt value with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok (k p)
          | _ -> Error (Printf.sprintf "fault key %s wants a probability in [0,1], got %S" key value)
        in
        match key with
        | "seed" -> (
          match int_of_string_opt value with
          | Some seed -> Ok { spec with seed }
          | None -> Error (Printf.sprintf "fault key seed wants an integer, got %S" value))
        | "mag" -> (
          match float_of_string_opt value with
          | Some m when m >= 0.0 -> Ok { spec with perturb_mag = m }
          | _ -> Error (Printf.sprintf "fault key mag wants a non-negative float, got %S" value))
        | "iter" -> prob (fun p -> { spec with p_iteration_limit = p })
        | "pivot" -> prob (fun p -> { spec with p_perturb = p })
        | "infeas" -> prob (fun p -> { spec with p_infeasible = p })
        | "raise" -> prob (fun p -> { spec with p_exception = p })
        | _ ->
          Error
            (Printf.sprintf "unknown fault key %S (known: seed, iter, pivot, mag, infeas, raise)"
               key))
  in
  List.fold_left
    (fun acc field -> Result.bind acc (fun spec -> parse_field spec field))
    (Ok none)
    (String.split_on_char ',' str)
