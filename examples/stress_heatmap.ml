(* Fig. 2a of the paper: accumulated stress maps of the aging-unaware
   floorplan (concentrated in one corner, max 4-ish units) versus the
   aging-aware floorplan (leveled across the fabric) — plus the
   corresponding thermal maps from the HotSpot-style model.

   Run with: dune exec examples/stress_heatmap.exe *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Thermal = Agingfp_thermal.Model
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation

let () =
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let result = Remap.solve ~mode:Rotation.Rotate design baseline in
  let remapped = result.Remap.mapping in
  let dim = Fabric.dim (Design.fabric design) in

  Format.printf "=== per-context stress, aging-unaware floorplan ===@.";
  Array.iteri
    (fun c ctx_map ->
      Format.printf "context %d:@." c;
      Array.iteri
        (fun pe s ->
          if pe mod dim = 0 && pe > 0 then Format.printf "@.";
          if s = 0.0 then Format.printf "   . " else Format.printf "%4.2f " s)
        ctx_map;
      Format.printf "@.@.")
    (Stress.per_context design baseline);

  Format.printf "=== accumulated stress: aging-unaware ===@.%s@.@."
    (Stress.heatmap design baseline);
  Format.printf "=== accumulated stress: aging-aware ===@.%s@.@."
    (Stress.heatmap design remapped);
  Format.printf "max accumulated stress: %.2f -> %.2f@.@."
    (Stress.max_accumulated design baseline)
    (Stress.max_accumulated design remapped);

  Format.printf "=== temperature (C): aging-unaware ===@.%s@.@."
    (Thermal.heatmap ~dim (Thermal.pe_temperatures design baseline));
  Format.printf "=== temperature (C): aging-aware ===@.%s@."
    (Thermal.heatmap ~dim (Thermal.pe_temperatures design remapped))
