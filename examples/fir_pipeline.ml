(* HLS entry point: compile two behavioural kernels (an 8-tap FIR
   filter and a 3x3 Sobel edge-detection stage — the DSP workloads the
   paper's introduction motivates) from the mini-C DSL, schedule them
   into contexts, and run the aging-aware flow on each.

   Run with: dune exec examples/fir_pipeline.exe *)

open Agingfp_cgrra
module Compile = Agingfp_hls.Compile
module Placer = Agingfp_place.Placer
module Mttf = Agingfp_aging.Mttf
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation

let fir8 =
  {|
// 8-tap symmetric FIR, 16-bit samples, 8-bit coefficients
input x0 : 16, x1 : 16, x2 : 16, x3 : 16, x4 : 16, x5 : 16, x6 : 16, x7 : 16;
let t0 = (x0 + x7) * 5;
let t1 = (x1 + x6) * 17;
let t2 = (x2 + x5) * 38;
let t3 = (x3 + x4) * 54;
let s01 = t0 + t1;
let s23 = t2 + t3;
let acc = s01 + s23;
output y = acc >> 7;
|}

let sobel =
  {|
// 3x3 Sobel gradient magnitude (|Gx| + |Gy| approximation)
input p00 : 8, p01 : 8, p02 : 8;
input p10 : 8,          p12 : 8;
input p20 : 8, p21 : 8, p22 : 8;
let gx_pos = p02 + (p12 << 1) + p22;
let gx_neg = p00 + (p10 << 1) + p20;
let gy_pos = p00 + (p01 << 1) + p02;
let gy_neg = p20 + (p21 << 1) + p22;
let gx = gx_pos - gx_neg;
let gy = gy_pos - gy_neg;
let ax = (gx < 0) ? (0 - gx) : gx;
let ay = (gy < 0) ? (0 - gy) : gy;
let mag = ax + ay;
output edge = (mag > 255) ? 255 : mag;
|}

let run name source dim =
  match Compile.compile ~fabric:(Fabric.create ~dim) ~name source with
  | Error msg -> Format.printf "%s: compile error: %s@." name msg
  | Ok design ->
    Format.printf "%a@." Design.pp design;
    let baseline = Placer.aging_unaware design in
    let result = Remap.solve ~mode:Rotation.Rotate design baseline in
    let improvement = Mttf.improvement design ~baseline ~remapped:result.Remap.mapping in
    Format.printf
      "  max stress %.2f -> %.2f, CPD %.3f -> %.3f ns, MTTF increase %.2fx@.@."
      result.Remap.st_up
      (Stress.max_accumulated design result.Remap.mapping)
      result.Remap.baseline_cpd_ns result.Remap.new_cpd_ns improvement

let () =
  run "fir8" fir8 4;
  run "sobel3x3" sobel 4
