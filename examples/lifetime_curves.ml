(* Fig. 2b of the paper: V_th shift versus operating time for the
   original and the re-mapped floorplan. The re-mapped curve has a
   lower slope (smaller effective duty on the worst PE), so it crosses
   the 10% failure threshold later — that crossing is the MTTF.

   Run with: dune exec examples/lifetime_curves.exe *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Nbti = Agingfp_aging.Nbti
module Mttf = Agingfp_aging.Mttf
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation

let year = 3.156e7

let () =
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let result = Remap.solve ~mode:Rotation.Rotate design baseline in
  let before = Mttf.of_mapping design baseline in
  let after = Mttf.of_mapping design result.Remap.mapping in
  let params = Nbti.default_params in
  let fail_shift = params.Nbti.fail_frac *. params.Nbti.vth0 in
  let times = Array.init 25 (fun i -> float_of_int (i + 1) *. 10.0 *. year) in

  Format.printf "V_th shift (mV) vs time; failure at %.1f mV@.@." (1000. *. fail_shift);
  Format.printf "%10s  %12s  %12s@." "years" "original" "re-mapped";
  Array.iter
    (fun t ->
      let shift_of (b : Mttf.breakdown) =
        Nbti.vth_shift ~duty:b.Mttf.critical_duty ~temp_k:b.Mttf.critical_temp_k t
      in
      let mark v = if v >= fail_shift then " <- failed" else "" in
      let s0 = shift_of before and s1 = shift_of after in
      Format.printf "%10.0f  %9.2f%-10s  %9.2f%s@." (t /. year) (1000. *. s0) (mark s0)
        (1000. *. s1) (mark s1))
    times;

  Format.printf "@.MTTF original : %6.1f years (PE %d, duty %.3f, %.1f C)@."
    (before.Mttf.mttf_s /. year) before.Mttf.critical_pe before.Mttf.critical_duty
    (before.Mttf.critical_temp_k -. 273.15);
  Format.printf "MTTF re-mapped: %6.1f years (PE %d, duty %.3f, %.1f C)@."
    (after.Mttf.mttf_s /. year) after.Mttf.critical_pe after.Mttf.critical_duty
    (after.Mttf.critical_temp_k -. 273.15);
  Format.printf "MTTF increase : %.2fx@." (after.Mttf.mttf_s /. before.Mttf.mttf_s)
