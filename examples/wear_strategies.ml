(* Comparing aging-mitigation strategies from the paper's related
   work (paper refs [4], [8], [10]) against the MILP floorplanner on
   one benchmark:

   - baseline:            the aging-unaware commercial-style floorplan
   - module diversification: periodically swap between two rigidly
     re-oriented copies of that floorplan (stress is time-shared)
   - rotation cycling:    same, across all 8 orientations
   - MILP re-mapping:     this paper — re-bind operations to level
     stress directly, under the no-delay-increase guarantee

   Run with: dune exec examples/wear_strategies.exe [benchmark] *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Mttf = Agingfp_aging.Mttf
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation
module Related = Agingfp_floorplan.Related

let year = 3.156e7

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "B13" in
  let design =
    if name = "tiny" then Benchmarks.tiny ()
    else Benchmarks.generate (Option.get (Benchmarks.find name))
  in
  Format.printf "%a@.@." Design.pp design;
  let baseline = Placer.aging_unaware design in
  let cpd0 = Analysis.cpd design baseline in
  let base = Mttf.of_mapping design baseline in

  let report label mttf_s cpd_note =
    Format.printf "  %-28s %7.1f years  (%.2fx)  %s@." label (mttf_s /. year)
      (mttf_s /. base.Mttf.mttf_s) cpd_note
  in
  Format.printf "MTTF by strategy:@.";
  report "aging-unaware baseline" base.Mttf.mttf_s
    (Printf.sprintf "CPD %.2f ns" cpd0);

  let diversified = Related.module_diversification_duty design baseline in
  report "module diversification [4,8]"
    (Mttf.of_duty design diversified).Mttf.mttf_s "CPD unchanged (rigid swap)";

  let cycled = Related.rotation_cycling_duty design baseline in
  report "rotation cycling [10]" (Mttf.of_duty design cycled).Mttf.mttf_s
    "CPD unchanged (rigid swap)";

  let r = Remap.solve ~mode:Rotation.Rotate design baseline in
  let ours = Mttf.of_mapping design r.Remap.mapping in
  report "MILP re-mapping (this work)" ours.Mttf.mttf_s
    (Printf.sprintf "CPD %.2f ns (guaranteed <= baseline)" r.Remap.new_cpd_ns);

  Format.printf
    "@.Time-sharing strategies divide the existing stress; the MILP moves it@.";
  Format.printf
    "onto idle PEs, which wins whenever the fabric has spare capacity.@."
