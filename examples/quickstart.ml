(* Quickstart: the full paper pipeline on a toy design in ~40 lines.

   1. Generate a 4-context 4x4 design (the "commercial flow" input).
   2. Place it with the aging-unaware baseline placer.
   3. Run the aging-aware MILP re-mapping (Algorithm 1, Rotate mode).
   4. Compare stress maps, CPD and MTTF.

   Run with: dune exec examples/quickstart.exe *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Mttf = Agingfp_aging.Mttf
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation

let () =
  let design = Benchmarks.tiny () in
  Format.printf "design: %a@.@." Design.pp design;

  (* Phase 1: aging-unaware mapping (the Musketeer stand-in). *)
  let baseline = Placer.aging_unaware design in
  Format.printf "baseline accumulated stress (max %.2f):@.%s@.@."
    (Stress.max_accumulated design baseline)
    (Stress.heatmap design baseline);

  (* Phase 2: aging-aware re-mapping. *)
  let result = Remap.solve ~mode:Rotation.Rotate design baseline in
  Format.printf "re-mapped accumulated stress (max %.2f):@.%s@.@."
    (Stress.max_accumulated design result.Remap.mapping)
    (Stress.heatmap design result.Remap.mapping);

  (* The paper's two claims: stress is leveled, delay is not hurt. *)
  Format.printf "CPD: %.3f ns -> %.3f ns (unchanged: %b)@." result.Remap.baseline_cpd_ns
    result.Remap.new_cpd_ns
    (result.Remap.new_cpd_ns <= result.Remap.baseline_cpd_ns +. 1e-9);
  let improvement = Mttf.improvement design ~baseline ~remapped:result.Remap.mapping in
  Format.printf "MTTF increase: %.2fx@." improvement
