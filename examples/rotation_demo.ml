(* Fig. 4 of the paper: (a) the 8 unique orientations of a critical
   path, and (b)->(c) a delay-aware re-mapping where stressed off-
   critical PEs move within their wire-length slack while the frozen
   critical path keeps the CPD unchanged.

   Run with: dune exec examples/rotation_demo.exe *)

open Agingfp_cgrra
module Coord = Agingfp_util.Coord
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Rotation = Agingfp_floorplan.Rotation
module Remap = Agingfp_floorplan.Remap

let render_shape dim coords =
  let cells = Array.make_matrix dim dim "." in
  List.iteri
    (fun i (c : Coord.t) ->
      if c.Coord.x >= 0 && c.Coord.x < dim && c.Coord.y >= 0 && c.Coord.y < dim then
        cells.(c.Coord.y).(c.Coord.x) <- string_of_int (i + 1))
    coords;
  String.concat "\n"
    (Array.to_list (Array.map (fun row -> String.concat " " (Array.to_list row)) cells))

let () =
  (* Part (a): an L-shaped 4-op critical path under all 8 orientations. *)
  let path = [ Coord.make 0 0; Coord.make 1 0; Coord.make 2 0; Coord.make 2 1 ] in
  Format.printf "=== Fig 4(a): the 8 unique orientations of a critical path ===@.@.";
  Array.iter
    (fun o ->
      let transformed, _ = Coord.normalize (Coord.transform_all o path) in
      Format.printf "%s:@.%s@.@."
        (Coord.orientation_to_string o)
        (render_shape 4 transformed))
    Coord.all_orientations;

  (* Orientations preserve intra-path wire length, hence CP delay. *)
  let wire ps =
    let rec total = function
      | a :: (b :: _ as tl) -> Coord.manhattan a b + total tl
      | _ -> 0
    in
    total ps
  in
  Format.printf "intra-path wire length under every orientation: %s@.@."
    (String.concat ", "
       (List.map
          (fun o -> string_of_int (wire (Coord.transform_all o path)))
          (Array.to_list Coord.all_orientations)));

  (* Part (b)/(c): on a real design, show that the frozen critical path
     stays put (Freeze) while stressed off-critical ops move, with the
     CPD provably unchanged. *)
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let result = Remap.solve ~mode:Rotation.Freeze design baseline in
  let remapped = result.Remap.mapping in
  Format.printf "=== Fig 4(b,c): delay-aware re-mapping on a 4x4 design ===@.@.";
  for ctx = 0 to Design.num_contexts design - 1 do
    let frozen = Rotation.critical_ops design baseline ~ctx in
    let moved =
      List.filter
        (fun op ->
          Mapping.pe_of baseline ~ctx ~op <> Mapping.pe_of remapped ~ctx ~op)
        (List.init (Dfg.num_ops (Design.context design ctx)) (fun i -> i))
    in
    Format.printf "context %d: %d critical ops frozen, %d off-critical ops moved@." ctx
      (List.length frozen) (List.length moved);
    List.iter
      (fun op ->
        assert (Mapping.pe_of baseline ~ctx ~op = Mapping.pe_of remapped ~ctx ~op))
      frozen
  done;
  Format.printf "@.CPD %.3f ns -> %.3f ns (critical paths frozen => unchanged)@."
    result.Remap.baseline_cpd_ns result.Remap.new_cpd_ns;
  Format.printf "max accumulated stress %.2f -> %.2f@." result.Remap.st_up
    (Stress.max_accumulated design remapped)
