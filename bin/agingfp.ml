(* agingfp — command-line front-end to the aging-aware floorplanner.

   Subcommands:
     list            show the Table-I benchmark suite
     remap           run the full Algorithm-1 flow on a benchmark or DSL file
     suite           run Table-I benchmarks (optionally across domains)
     mttf            report the baseline (aging-unaware) MTTF breakdown
     heatmap         print stress and thermal maps before/after re-mapping
     lint            static-analyze formulation-(3) models (or an .lp file) *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Thermal = Agingfp_thermal.Model
module Mttf = Agingfp_aging.Mttf
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation
module Related = Agingfp_floorplan.Related
module Audit = Agingfp_floorplan.Audit
module Ilp_model = Agingfp_floorplan.Ilp_model
module Model = Agingfp_lp.Model
module Lp_format = Agingfp_lp.Lp_format
module Analyze = Agingfp_lp.Analyze
module Milp = Agingfp_lp.Milp
module Node_store = Agingfp_lp.Node_store
module Brancher = Agingfp_lp.Brancher
module Cuts = Agingfp_lp.Cuts
module Heuristics = Agingfp_lp.Heuristics
module Faults = Agingfp_lp.Faults
module Router = Agingfp_route.Router
module Ascii_table = Agingfp_util.Ascii_table
module Json = Agingfp_lintcode.Json
module Pool = Agingfp_util.Pool
module Budget = Agingfp_util.Budget

(* [Logs.format_reporter] is not serialized; with [--jobs > 1] pool
   tasks log concurrently and interleave mid-line without this. *)
let mutex_reporter inner =
  let m = Mutex.create () in
  {
    Logs.report =
      (fun src level ~over k msgf ->
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () -> inner.Logs.report src level ~over k msgf));
  }

let setup_logs level =
  Logs.set_reporter (mutex_reporter (Logs.format_reporter ()));
  Logs.set_level level

(* [--jobs 0] means "one per core"; explicit values are clamped to
   the core count — oversubscription measured 0.27x on a 1-core host,
   so it is never the default path. *)
let resolve_jobs jobs =
  if jobs <= 0 then Pool.default_jobs () else Pool.effective_jobs jobs

(* Context for the top-level fatal handler: which benchmark/input and
   which pipeline phase was active when an exception escaped, so the
   one-line diagnostic names the culprit instead of a backtrace. *)
let diag_benchmark = ref "-"
let diag_phase = ref "startup"

let set_diag ?benchmark phase =
  (match benchmark with Some b -> diag_benchmark := b | None -> ());
  diag_phase := phase

(* ---------- design loading ---------- *)

let load_design ?design_file ?(techmap = false) benchmark source dim =
  set_diag
    ?benchmark:
      (match (design_file, benchmark, source) with
      | Some path, _, _ | None, None, Some path -> Some (Filename.basename path)
      | None, Some name, _ -> Some name
      | None, None, None -> None)
    "load-design";
  match design_file with
  | Some path ->
    (* Read + parse via the raising API: [Sys_error] and
       [Serial.Parse_error] escape to the top-level [fatal] handler,
       which classifies them into distinct exit codes. *)
    let text = In_channel.with_open_text path In_channel.input_all in
    Ok (Serial.design_of_string_exn text)
  | None -> (
  match (benchmark, source) with
  | Some name, None -> (
    if name = "tiny" then Ok (Benchmarks.tiny ())
    else
      match Benchmarks.find name with
      | Some spec -> Ok (Benchmarks.generate spec)
      | None -> Error (Printf.sprintf "unknown benchmark %S (try `agingfp list`)" name))
  | None, Some path -> (
    match In_channel.with_open_text path In_channel.input_all with
    | source ->
      let fabric = Fabric.create ~dim in
      Agingfp_hls.Compile.compile ~techmap ~fabric ~name:(Filename.basename path) source
    | exception Sys_error msg -> Error msg)
  | Some _, Some _ -> Error "pass either --benchmark or --source, not both"
  | None, None -> Error "one of --benchmark, --source or --design is required")

let mode_of_string = function
  | "freeze" -> Ok Rotation.Freeze
  | "rotate" -> Ok Rotation.Rotate
  | s -> Error (Printf.sprintf "unknown mode %S (freeze|rotate)" s)

(* ---------- subcommand bodies ---------- *)

let cmd_list () =
  let rows =
    Array.to_list
      (Array.map
         (fun (s : Benchmarks.spec) ->
           [|
             s.Benchmarks.bname;
             string_of_int s.Benchmarks.contexts;
             Printf.sprintf "%dx%d" s.Benchmarks.dim s.Benchmarks.dim;
             string_of_int s.Benchmarks.total_ops;
             Benchmarks.usage_to_string s.Benchmarks.usage;
             Printf.sprintf "%.2f" s.Benchmarks.paper_freeze;
             Printf.sprintf "%.2f" s.Benchmarks.paper_rotate;
           |])
         Benchmarks.table1)
  in
  print_endline
    (Ascii_table.render
       ~header:[| "name"; "ctx"; "fabric"; "PE#"; "usage"; "paper-freeze"; "paper-rotate" |]
       rows);
  0

let cmd_mttf benchmark source dim =
  match load_design benchmark source dim with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok design ->
    let baseline = Placer.aging_unaware design in
    let b = Mttf.of_mapping design baseline in
    Format.printf "%a@." Design.pp design;
    Format.printf "baseline CPD        : %.3f ns@." (Analysis.cpd design baseline);
    Format.printf "max accum. stress   : %.3f@." (Stress.max_accumulated design baseline);
    Format.printf "mean accum. stress  : %.3f@." (Stress.mean_accumulated design baseline);
    Format.printf "MTTF                : %.3g s (%.2f years)@." b.Mttf.mttf_s
      (b.Mttf.mttf_s /. 3.156e7);
    Format.printf "critical PE         : %d (duty %.3f, %.1f C)@." b.Mttf.critical_pe
      b.Mttf.critical_duty
      (b.Mttf.critical_temp_k -. 273.15);
    0

let solver_stats_table () =
  let s = Milp.cumulative () in
  let p = s.Milp.presolve in
  let row name v = [| name; string_of_int v |] in
  let frow name v = [| name; (if Float.is_nan v then "-" else Printf.sprintf "%g" v) |] in
  Ascii_table.render
    ~header:[| "solver metric"; "value" |]
    [
      row "B&B nodes" s.Milp.nodes;
      (* A gap is only meaningful once a tree search actually ran. *)
      frow "optimality gap (worst)" (if s.Milp.nodes = 0 then nan else s.Milp.gap);
      frow "dual bound (last solve)" s.Milp.dual_bound;
      row "cuts separated" s.Milp.cuts_separated;
      row "cuts active" s.Milp.cuts_active;
      row "cuts aged out" s.Milp.cuts_aged_out;
      row "heuristic incumbents" s.Milp.heuristic_incumbents;
      (* nan whenever no root separation phase ran — rendered "-". *)
      frow "root gap closed" s.Milp.root_gap_closed;
      row "warm LP solves" s.Milp.warm_solves;
      row "cold LP solves" s.Milp.cold_solves;
      row "LP iterations" s.Milp.lp_iterations;
      row "basis refactorizations" s.Milp.refactorizations;
      row "drift refreshes" s.Milp.drift_refreshes;
      row "eta updates" s.Milp.eta_updates;
      row "peak basis fill (nnz)" s.Milp.fill_in;
      row "presolve rounds" p.Agingfp_lp.Presolve.rounds;
      row "rows removed" p.Agingfp_lp.Presolve.rows_removed;
      row "singleton rows" p.Agingfp_lp.Presolve.singleton_rows;
      row "vars fixed" p.Agingfp_lp.Presolve.vars_fixed;
      row "vars substituted" p.Agingfp_lp.Presolve.vars_substituted;
      row "bounds tightened" p.Agingfp_lp.Presolve.bounds_tightened;
      row "coeffs strengthened" p.Agingfp_lp.Presolve.coeffs_strengthened;
      row "probe fixings" p.Agingfp_lp.Presolve.probe_fixings;
      row "matrix nnz removed" p.Agingfp_lp.Presolve.nnz_removed;
      row "matrix nnz fill-in" p.Agingfp_lp.Presolve.nnz_fillin;
    ]
  ^ "\n"
  ^ Ascii_table.render
      ~header:[| "presolve rule"; "applications"; "rows"; "vars"; "coeffs" |]
      (List.filter_map
         (fun (name, r) ->
           if r.Agingfp_lp.Presolve.applications = 0 then None
           else
             Some
               [|
                 name;
                 string_of_int r.Agingfp_lp.Presolve.applications;
                 string_of_int r.Agingfp_lp.Presolve.rows_touched;
                 string_of_int r.Agingfp_lp.Presolve.vars_touched;
                 string_of_int r.Agingfp_lp.Presolve.coeffs_touched;
               |])
         p.Agingfp_lp.Presolve.per_rule)

let cuts_config_of_string = function
  | "off" -> Some Cuts.off
  | "gomory" -> Some { Cuts.default_config with Cuts.cover = false }
  | "cover" -> Some { Cuts.default_config with Cuts.gomory = false }
  | "both" -> Some Cuts.default_config
  | _ -> None

let heuristics_config_of_string = function
  | "off" -> Some Heuristics.off
  | "dive" -> Some { Heuristics.default_config with Heuristics.pump = false }
  | "pump" -> Some { Heuristics.default_config with Heuristics.diving = false }
  | "both" -> Some Heuristics.default_config
  | _ -> None

let cmd_remap benchmark source dim mode_s quiet design_file save_design save_floorplan
    techmap stats certify deadline gap traversal branching cuts heuristics inject_faults
    jobs =
  let fault_spec =
    match inject_faults with
    | None -> Ok Faults.none
    | Some s -> Faults.of_string s
  in
  let search_opts =
    match
      ( Node_store.strategy_of_string traversal,
        Brancher.rule_of_string branching,
        cuts_config_of_string cuts,
        heuristics_config_of_string heuristics )
    with
    | None, _, _, _ ->
      Error (Printf.sprintf "unknown traversal %S (dfs|best-first|hybrid)" traversal)
    | _, None, _, _ ->
      Error (Printf.sprintf "unknown branching %S (most-fractional|pseudocost)" branching)
    | _, _, None, _ ->
      Error (Printf.sprintf "unknown cuts setting %S (off|gomory|cover|both)" cuts)
    | _, _, _, None ->
      Error
        (Printf.sprintf "unknown heuristics setting %S (off|dive|pump|both)" heuristics)
    | Some t, Some b, Some c, Some h -> Ok (t, b, c, h)
  in
  match
    (load_design ?design_file ~techmap benchmark source dim, mode_of_string mode_s,
     fault_spec, search_opts)
  with
  | Error msg, _, _, _ | _, Error msg, _, _ | _, _, Error msg, _ | _, _, _, Error msg ->
    prerr_endline msg;
    1
  | Ok design, Ok mode, Ok fault_spec, Ok (traversal, branching, cuts, heuristics) ->
    (match save_design with
    | Some path -> (
      match Serial.save_design path design with
      | Ok () -> Format.printf "design written to %s@." path
      | Error msg -> prerr_endline msg)
    | None -> ());
    let baseline = Placer.aging_unaware design in
    Milp.reset_cumulative ();
    Remap.reset_certification ();
    let params =
      {
        Remap.default_params with
        Remap.certify;
        deadline_s = deadline;
        jobs = resolve_jobs jobs;
        milp =
          {
            Remap.default_params.Remap.milp with
            Milp.mip_gap = gap;
            traversal;
            branching;
            cuts;
            heuristics;
          };
      }
    in
    set_diag "remap";
    let r, fired =
      Faults.with_spec fault_spec (fun () ->
          let r = Remap.solve ~params ~mode design baseline in
          (r, Faults.fired ()))
    in
    set_diag "report";
    let imp = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
    Format.printf "%a@." Design.pp design;
    if not quiet then begin
      Format.printf "@.accumulated stress before:@.%s@."
        (Stress.heatmap design baseline);
      Format.printf "@.accumulated stress after:@.%s@."
        (Stress.heatmap design r.Remap.mapping)
    end;
    Format.printf "@.ST_target           : %.3f (lower bound %.3f, baseline max %.3f)@."
      r.Remap.st_target r.Remap.st_lower_bound r.Remap.st_up;
    Format.printf "CPD                 : %.3f ns -> %.3f ns@." r.Remap.baseline_cpd_ns
      r.Remap.new_cpd_ns;
    Format.printf "MTTF increase       : %.2fx@." imp;
    Format.printf "solve rung          : %a@." Remap.pp_rung r.Remap.rung;
    if Float.is_finite r.Remap.gap then
      Format.printf "MILP gap            : %g (dual bound %g)@." r.Remap.gap
        r.Remap.dual_bound;
    (match r.Remap.rung_stats with
    | [] -> ()
    | entries ->
      Format.printf "solver work by rung :@.";
      List.iter
        (fun (rung, (s : Milp.stats)) ->
          Format.printf
            "  - %a: %d nodes, %d LP iterations (%d warm + %d cold solves, %d cuts, \
             %d heuristic incumbents)@."
            Remap.pp_rung rung s.Milp.nodes s.Milp.lp_iterations s.Milp.warm_solves
            s.Milp.cold_solves s.Milp.cuts_separated s.Milp.heuristic_incumbents)
        entries);
    (match r.Remap.degradation with
    | [] -> ()
    | steps ->
      Format.printf "degradation trail   :@.";
      List.iter
        (fun s -> Format.printf "  - %a@." Remap.pp_degradation_step s)
        steps);
    if inject_faults <> None then
      Format.printf
        "faults fired        : %d iteration-limit, %d pivot, %d infeasible, %d raise@."
        fired.Faults.iteration_limits fired.Faults.perturbations
        fired.Faults.infeasibilities fired.Faults.exceptions;
    if not r.Remap.improved then
      Format.printf "(no delay-clean floorplan found; baseline kept)@.";
    if stats then Format.printf "@.%s@." (solver_stats_table ());
    let cert_failed =
      if not certify then false
      else begin
        let c = Remap.certification () in
        Format.printf
          "certificates        : %d LP + %d MILP checked, %d rejected@."
          c.Remap.lp_checked c.Remap.milp_checked c.Remap.rejected;
        List.iter
          (fun msg -> Format.printf "  rejected: %s@." msg)
          (List.rev c.Remap.failures);
        c.Remap.rejected > 0
      end
    in
    Format.printf "floorplan audit     : %a@." Audit.pp r.Remap.audit;
    (match save_floorplan with
    | Some path -> (
      match Serial.save_mapping path r.Remap.mapping with
      | Ok () -> Format.printf "floorplan written to %s@." path
      | Error msg -> prerr_endline msg)
    | None -> ());
    if cert_failed || not (Audit.ok r.Remap.audit) then 1 else 0

(* Table-I sweep. Benchmarks are independent solves, so with
   [--jobs > 1] they fan out over a domain pool; each task solves
   sequentially (inner jobs = 1) — one level of parallelism saturates
   the machine without oversubscribing it. Results are collected in
   input order, so the report is identical at any job count. *)
let cmd_suite jobs quick deadline cuts_s heuristics_s =
  match (cuts_config_of_string cuts_s, heuristics_config_of_string heuristics_s) with
  | None, _ ->
    prerr_endline
      (Printf.sprintf "unknown cuts setting %S (off|gomory|cover|both)" cuts_s);
    1
  | _, None ->
    prerr_endline
      (Printf.sprintf "unknown heuristics setting %S (off|dive|pump|both)" heuristics_s);
    1
  | Some cuts, Some heuristics ->
  let jobs = resolve_jobs jobs in
  let specs =
    let all = Array.to_list Benchmarks.table1 in
    if quick then List.filteri (fun i _ -> i < 6) all else all
  in
  set_diag "suite";
  let run_one (spec : Benchmarks.spec) =
    diag_benchmark := spec.Benchmarks.bname;
    let design = Benchmarks.generate spec in
    let baseline = Placer.aging_unaware design in
    let params =
      {
        Remap.default_params with
        Remap.deadline_s = deadline;
        milp = { Remap.default_params.Remap.milp with Milp.cuts; heuristics };
      }
    in
    let t = Budget.create () in
    let freeze_res, rotate_res = Remap.solve_both ~params design baseline in
    let secs = Budget.elapsed_s t in
    let imp r = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
    let nodes r =
      List.fold_left (fun acc (_, s) -> acc + s.Milp.nodes) 0 r.Remap.rung_stats
    in
    let cuts r =
      List.fold_left (fun acc (_, s) -> acc + s.Milp.cuts_separated) 0 r.Remap.rung_stats
    in
    let heur r =
      List.fold_left
        (fun acc (_, s) -> acc + s.Milp.heuristic_incumbents)
        0 r.Remap.rung_stats
    in
    ( spec,
      imp freeze_res,
      imp rotate_res,
      rotate_res.Remap.rung,
      rotate_res.Remap.gap,
      nodes freeze_res + nodes rotate_res,
      cuts freeze_res + cuts rotate_res,
      heur freeze_res + heur rotate_res,
      secs,
      Audit.ok freeze_res.Remap.audit && Audit.ok rotate_res.Remap.audit )
  in
  let wall = Budget.create () in
  let results =
    if jobs = 1 then List.map run_one specs
    else
      Array.to_list (Pool.map (Pool.get jobs) run_one (Array.of_list specs))
  in
  let wall_s = Budget.elapsed_s wall in
  set_diag "report";
  let rows =
    List.map
      (fun ((spec : Benchmarks.spec), fr, rr, rung, gap, nodes, cuts, heur, secs, ok) ->
        [|
          spec.Benchmarks.bname;
          Printf.sprintf "%.2fx" fr;
          Printf.sprintf "%.2fx" spec.Benchmarks.paper_freeze;
          Printf.sprintf "%.2fx" rr;
          Printf.sprintf "%.2fx" spec.Benchmarks.paper_rotate;
          Format.asprintf "%a" Remap.pp_rung rung;
          (if Float.is_nan gap then "-" else Printf.sprintf "%.3g" gap);
          string_of_int nodes;
          string_of_int cuts;
          string_of_int heur;
          Printf.sprintf "%.2f" secs;
          (if ok then "ok" else "FAILED");
        |])
      results
  in
  print_endline
    (Ascii_table.render
       ~header:
         [|
           "name"; "freeze"; "paper"; "rotate"; "paper"; "rung"; "gap"; "nodes"; "cuts";
           "heur"; "sec"; "audit";
         |]
       rows);
  Printf.printf "%d benchmarks in %.2f s with --jobs %d\n" (List.length results) wall_s
    jobs;
  if List.for_all (fun (_, _, _, _, _, _, _, _, _, ok) -> ok) results then 0 else 1

let cmd_heatmap benchmark source dim mode_s =
  match (load_design benchmark source dim, mode_of_string mode_s) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    1
  | Ok design, Ok mode ->
    let baseline = Placer.aging_unaware design in
    set_diag "remap";
    let r = Remap.solve ~mode design baseline in
    let dim = Fabric.dim (Design.fabric design) in
    Format.printf "stress before:@.%s@.@." (Stress.heatmap design baseline);
    Format.printf "stress after:@.%s@.@." (Stress.heatmap design r.Remap.mapping);
    Format.printf "temperature before (C):@.%s@.@."
      (Thermal.heatmap ~dim (Thermal.pe_temperatures design baseline));
    Format.printf "temperature after (C):@.%s@."
      (Thermal.heatmap ~dim (Thermal.pe_temperatures design r.Remap.mapping));
    0

let cmd_related benchmark source dim =
  match load_design benchmark source dim with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok design ->
    let baseline = Placer.aging_unaware design in
    let base = (Mttf.of_mapping design baseline).Mttf.mttf_s in
    let diversified =
      (Mttf.of_duty design (Related.module_diversification_duty design baseline)).Mttf.mttf_s
    in
    let cycled =
      (Mttf.of_duty design (Related.rotation_cycling_duty design baseline)).Mttf.mttf_s
    in
    set_diag "remap";
    let r = Remap.solve ~mode:Rotation.Rotate design baseline in
    let ours = (Mttf.of_mapping design r.Remap.mapping).Mttf.mttf_s in
    Format.printf "%a@.@." Design.pp design;
    Format.printf "MTTF relative to the aging-unaware baseline:@.";
    Format.printf "  baseline                      1.00x@.";
    Format.printf "  module diversification [4,8]  %.2fx@." (diversified /. base);
    Format.printf "  rotation cycling [10]         %.2fx@." (cycled /. base);
    Format.printf "  MILP re-mapping (this work)   %.2fx@." (ours /. base);
    0

let cmd_export_lp benchmark source dim mode_s out =
  match (load_design benchmark source dim, mode_of_string mode_s) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    1
  | Ok design, Ok mode ->
    let baseline = Placer.aging_unaware design in
    let inst, st_target = Remap.build_formulation ~mode design baseline in
    (match Lp_format.write_file out (Ilp_model.model inst) with
    | Ok () ->
      Format.printf
        "formulation (3) at ST_target = %.3f written to %s (%d binaries, %d rows)@."
        st_target out (Ilp_model.num_binaries inst) (Ilp_model.num_rows inst);
      0
    | Error msg ->
      prerr_endline msg;
      1)

(* Lint one model; in text mode prints Error/Warning diagnostics plus
   a summary line. Returns the full diagnostic list. *)
let lint_model ~json name model =
  let diags = Analyze.lint model in
  if not json then begin
    Format.printf "%-10s %a@." name Analyze.pp_summary diags;
    List.iter
      (fun (d : Analyze.diagnostic) ->
        match d.Analyze.severity with
        | Analyze.Error | Analyze.Warning -> Format.printf "  %a@." Analyze.pp_diagnostic d
        | Analyze.Info -> ())
      diags
  end;
  diags

(* One finding object per diagnostic, same field convention as
   codelint's output (rule/severity/message, plus the locus that makes
   sense here: model name and optional row/var indices). *)
let lint_finding_json model_name (d : Analyze.diagnostic) =
  Json.Obj
    ([
       ("rule", Json.Str (Analyze.code_label d.Analyze.code));
       ("severity", Json.Str (Analyze.severity_label d.Analyze.severity));
       ("model", Json.Str model_name);
     ]
    @ (match d.Analyze.row with Some r -> [ ("row", Json.Int r) ] | None -> [])
    @ (match d.Analyze.var with Some v -> [ ("var", Json.Int v) ] | None -> [])
    @ [ ("message", Json.Str d.Analyze.message) ])

let lint_doc_json results =
  let findings =
    List.concat_map
      (fun (name, diags) -> List.map (lint_finding_json name) diags)
      results
  in
  let errors =
    List.fold_left
      (fun n (_, diags) -> n + List.length (Analyze.errors diags))
      0 results
  in
  Json.Obj
    [
      ("tool", Json.Str "agingfp-lint");
      ("findings", Json.List findings);
      ("errors", Json.Int errors);
    ]

let cmd_lint benchmark source dim mode_s all json lp_file =
  let results = ref [] in
  let run name model =
    let diags = lint_model ~json name model in
    results := (name, diags) :: !results;
    Analyze.errors diags = []
  in
  let status =
    match lp_file with
    | Some path -> (
      match Lp_format.read_file path with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok model -> if run (Filename.basename path) model then 0 else 1)
    | None -> (
      match mode_of_string mode_s with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok mode ->
        let lint_design design =
          let baseline = Placer.aging_unaware design in
          let inst, _st = Remap.build_formulation ~mode design baseline in
          run (Design.name design) (Ilp_model.model inst)
        in
        if all then begin
          let clean = ref true in
          let check design = if not (lint_design design) then clean := false in
          check (Benchmarks.tiny ());
          Array.iter (fun spec -> check (Benchmarks.generate spec)) Benchmarks.table1;
          if !clean then 0 else 1
        end
        else (
          match load_design benchmark source dim with
          | Error msg ->
            prerr_endline msg;
            1
          | Ok design -> if lint_design design then 0 else 1))
  in
  if json && !results <> [] then
    print_endline (Json.to_string (lint_doc_json (List.rev !results)));
  status

let cmd_route benchmark source dim capacity mode_s =
  match (load_design benchmark source dim, mode_of_string mode_s) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    1
  | Ok design, Ok mode ->
    let baseline = Placer.aging_unaware design in
    set_diag "remap";
    let remapped = (Remap.solve ~mode design baseline).Remap.mapping in
    let params = { Router.default_params with Router.capacity } in
    Format.printf "%a — routing with %d tracks/channel@.@." Design.pp design capacity;
    List.iter
      (fun (label, mapping) ->
        let results = Router.route_all ~params design mapping in
        Format.printf "%s floorplan:@." label;
        Array.iteri
          (fun c (r : Router.result) ->
            Format.printf
              "  ctx %2d: %3d nets, detour %.3f, peak channel use %d, overused %d@."
              c (Array.length r.Router.nets) (Router.detour_factor r)
              r.Router.max_channel_usage r.Router.overused_channels)
          results;
        Format.printf "  model CPD %.3f ns, routed CPD %.3f ns@.@."
          (Analysis.cpd design mapping)
          (Router.routed_cpd design results))
      [ ("baseline", baseline); ("re-mapped", remapped) ];
    0

(* ---------- cmdliner wiring ---------- *)

open Cmdliner

let benchmark_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark name (B1..B27 or tiny).")

let source_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "source" ] ~docv:"FILE" ~doc:"Behavioural DSL source file.")

let dim_arg =
  Arg.(
    value & opt int 8
    & info [ "d"; "dim" ] ~docv:"N" ~doc:"Fabric dimension for --source (NxN).")

let mode_arg =
  Arg.(
    value & opt string "rotate"
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"Critical-path handling: freeze or rotate.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Skip the stress heatmaps.")

let design_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "design" ] ~docv:"FILE" ~doc:"Load a serialized design instead.")

let save_design_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-design" ] ~docv:"FILE" ~doc:"Serialize the input design.")

let save_floorplan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-floorplan" ] ~docv:"FILE" ~doc:"Serialize the re-mapped floorplan.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the cumulative MILP/LP solver statistics (presolve reductions, \
              branch & bound nodes, warm vs. cold LP solves).")

let techmap_arg =
  Arg.(
    value & flag
    & info [ "techmap" ]
        ~doc:"Fuse ALU->DMU chains into single PEs during HLS (--source only).")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:"Re-verify every optimal LP point and MILP result in exact rational \
              arithmetic as the flow runs; exit non-zero if any certificate is \
              rejected or the final floorplan audit fails.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SEC"
        ~doc:"Wall-clock budget (seconds, monotonic clock) for the whole solve. On \
              expiry the degradation ladder falls back to ever cheaper machinery and \
              at worst returns the audited baseline floorplan.")

let gap_arg =
  Arg.(
    value & opt float 0.0
    & info [ "gap" ] ~docv:"G"
        ~doc:"Relative MILP optimality-gap tolerance: branch & bound stops once the \
              incumbent is proven within G of the global dual bound (stop reason \
              gap-limit). 0 (the default) searches to a full optimality proof.")

let traversal_arg =
  Arg.(
    value & opt string "hybrid"
    & info [ "traversal" ] ~docv:"ORDER"
        ~doc:"Branch & bound node-selection order: dfs, best-first, or hybrid \
              (plunge depth-first, jump to the best dual bound when the dive dies).")

let branching_arg =
  Arg.(
    value & opt string "pseudocost"
    & info [ "branching" ] ~docv:"RULE"
        ~doc:"Branching-variable rule: pseudocost (reliability-initialized by \
              strong-branching probes) or most-fractional.")

let cuts_arg =
  Arg.(
    value & opt string "both"
    & info [ "cuts" ] ~docv:"FAMILY"
        ~doc:"Cutting-plane separation: off, gomory (mixed-integer Gomory cuts from \
              the warm tableau), cover (lifted knapsack covers from the Eq.(3) \
              capacity rows), or both (the default). Cuts are managed by a shared \
              pool with activity aging and never change the reported optimum.")

let heuristics_arg =
  Arg.(
    value & opt string "both"
    & info [ "heuristics" ] ~docv:"KIND"
        ~doc:"Root primal heuristics that seed the incumbent before node 1: off, \
              dive (least-fractional diving), pump (feasibility pump), or both (the \
              default). Candidates are audit-checked before installation.")

let inject_faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-faults" ] ~docv:"SPEC"
        ~doc:"Arm the seeded solver fault injector (robustness testing). SPEC is \
              comma-separated key=value with keys seed, iter, pivot, mag, infeas, \
              raise — e.g. seed=42,infeas=0.3,raise=0.05.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Domains used by the solver's parallel layer (1 = sequential, 0 = one \
              per core).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

(* The command must be a thunk: OCaml evaluates arguments before the
   call, so passing the applied command directly would run it before
   the reporter exists and every log line would be dropped. *)
let with_logs verbose f =
  setup_logs (if verbose then Some Logs.Debug else Some Logs.Warning);
  f ()

(* ---------- the remap daemon ---------- *)

let cmd_serve host port workers queue default_deadline max_deadline cache_capacity
    max_body_kb read_timeout inject_faults =
  let module Server = Agingfp_serve.Server in
  let module Inject = Agingfp_serve.Inject in
  let fault_spec =
    match inject_faults with None -> Ok Inject.none | Some s -> Inject.of_string s
  in
  match fault_spec with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok spec ->
    Inject.install spec;
    let config =
      {
        Server.default_config with
        host;
        port;
        workers;
        queue_capacity = queue;
        default_deadline_s = default_deadline;
        max_deadline_s = max_deadline;
        cache_capacity;
        limits =
          {
            Agingfp_serve.Http.default_limits with
            max_body_bytes = max_body_kb * 1024;
            read_timeout_s = read_timeout;
          };
      }
    in
    let server = Server.create ~config () in
    (* Graceful drain on SIGTERM/SIGINT: the handler runs at an OCaml
       safe point but must not take locks, so it only flips atomics
       and pokes the self-pipe; the acceptor does the reliable
       broadcast. SIGPIPE is ignored so a peer closing mid-response
       surfaces as EPIPE on the write, which Http swallows. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let drain = Sys.Signal_handle (fun _ -> Server.request_stop server) in
    Sys.set_signal Sys.sigterm drain;
    Sys.set_signal Sys.sigint drain;
    Printf.printf "agingfp serve: listening on %s:%d (%d workers, queue %d)\n%!" host
      (Server.port server) workers queue;
    Server.run server;
    Printf.printf "agingfp serve: drained\n%!";
    0

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"Show the Table-I benchmark suite")
    Term.(const (fun verbose -> with_logs verbose cmd_list) $ verbose_arg)

let mttf_cmd =
  Cmd.v (Cmd.info "mttf" ~doc:"Baseline MTTF of the aging-unaware floorplan")
    Term.(
      const (fun verbose b s d -> with_logs verbose (fun () -> cmd_mttf b s d))
      $ verbose_arg $ benchmark_arg $ source_arg $ dim_arg)

let remap_cmd =
  Cmd.v (Cmd.info "remap" ~doc:"Run the aging-aware re-mapping flow (Algorithm 1)")
    Term.(
      const
        (fun verbose b s d m q df sd sf tm stats certify deadline gap trav branch cuts
             heur faults jobs ->
          with_logs verbose (fun () ->
              cmd_remap b s d m q df sd sf tm stats certify deadline gap trav branch
                cuts heur faults jobs))
      $ verbose_arg $ benchmark_arg $ source_arg $ dim_arg $ mode_arg $ quiet_arg
      $ design_file_arg $ save_design_arg $ save_floorplan_arg $ techmap_arg $ stats_arg
      $ certify_arg $ deadline_arg $ gap_arg $ traversal_arg $ branching_arg
      $ cuts_arg $ heuristics_arg $ inject_faults_arg $ jobs_arg)

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Run only the first six Table-I benchmarks.")

let suite_cmd =
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the Table-I benchmark sweep, optionally fanning the independent \
             benchmarks out over a domain pool (--jobs)")
    Term.(
      const (fun verbose jobs quick deadline cuts heuristics ->
          with_logs verbose (fun () -> cmd_suite jobs quick deadline cuts heuristics))
      $ verbose_arg $ jobs_arg $ quick_arg $ deadline_arg $ cuts_arg $ heuristics_arg)

let out_arg =
  Arg.(
    value & opt string "model.lp"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output LP file path.")

let export_lp_cmd =
  Cmd.v
    (Cmd.info "export-lp"
       ~doc:"Write the formulation-(3) MILP in CPLEX LP format")
    Term.(
      const (fun verbose b s d m o -> with_logs verbose (fun () -> cmd_export_lp b s d m o))
      $ verbose_arg $ benchmark_arg $ source_arg $ dim_arg $ mode_arg $ out_arg)

let capacity_arg =
  Arg.(
    value & opt int 4
    & info [ "capacity" ] ~docv:"N" ~doc:"Routing tracks per channel.")

let route_cmd =
  Cmd.v (Cmd.info "route" ~doc:"Route the floorplans through the channel model")
    Term.(
      const (fun verbose b s d c m -> with_logs verbose (fun () -> cmd_route b s d c m))
      $ verbose_arg $ benchmark_arg $ source_arg $ dim_arg $ capacity_arg $ mode_arg)

let lint_all_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"Lint every bundled benchmark (tiny plus B1..B27).")

let lint_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit findings as a single JSON document on stdout (same \
           rule/severity/message field convention as codelint --json) \
           instead of the human-readable report.")

let lp_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lp-file" ] ~docv:"FILE" ~doc:"Lint a CPLEX-LP-format model file instead.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static-analyze a formulation-(3) model (or an .lp file) for \
             inconsistent bounds, degenerate rows, and conditioning problems")
    Term.(
      const (fun verbose b s d m all json lp ->
          with_logs verbose (fun () -> cmd_lint b s d m all json lp))
      $ verbose_arg $ benchmark_arg $ source_arg $ dim_arg $ mode_arg $ lint_all_arg
      $ lint_json_arg $ lp_file_arg)

let related_cmd =
  Cmd.v
    (Cmd.info "related" ~doc:"Compare against prior aging-mitigation strategies")
    Term.(
      const (fun verbose b s d -> with_logs verbose (fun () -> cmd_related b s d))
      $ verbose_arg $ benchmark_arg $ source_arg $ dim_arg)

let heatmap_cmd =
  Cmd.v (Cmd.info "heatmap" ~doc:"Stress and thermal maps before/after re-mapping")
    Term.(
      const (fun verbose b s d m -> with_logs verbose (fun () -> cmd_heatmap b s d m))
      $ verbose_arg $ benchmark_arg $ source_arg $ dim_arg $ mode_arg)

let serve_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT" ~doc:"Port to bind (0 picks an ephemeral port).")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains solving requests.")
  in
  let queue_arg =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue bound; beyond it requests are shed with 429 and a \
                Retry-After estimate.")
  in
  let default_deadline_arg =
    Arg.(
      value & opt float 2.0
      & info [ "default-deadline" ] ~docv:"SEC"
          ~doc:"Deadline for requests that do not carry one.")
  in
  let max_deadline_arg =
    Arg.(
      value & opt float 60.0
      & info [ "max-deadline" ] ~docv:"SEC" ~doc:"Upper bound on client deadlines.")
  in
  let cache_arg =
    Arg.(
      value & opt int 32
      & info [ "cache" ] ~docv:"N"
          ~doc:"Warm-state cache capacity (design+baseline fingerprints, LRU).")
  in
  let max_body_arg =
    Arg.(
      value & opt int 4096
      & info [ "max-body" ] ~docv:"KB" ~doc:"Largest accepted request body, in KiB.")
  in
  let read_timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "read-timeout" ] ~docv:"SEC"
          ~doc:"Budget for reading one whole request (slow-loris defence).")
  in
  let serve_faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-faults" ] ~docv:"SPEC"
          ~doc:"Arm the seeded server fault injector. SPEC is comma-separated \
                key=value with keys seed, raise, poison, expire, slow — e.g. \
                seed=42,raise=0.1,poison=0.2.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the remap daemon: HTTP requests in, audited floorplans out, with \
             admission control, warm-state caching and graceful degradation under \
             overload")
    Term.(
      const (fun verbose host port workers queue dd md cache body rt faults ->
          with_logs verbose (fun () ->
              cmd_serve host port workers queue dd md cache body rt faults))
      $ verbose_arg $ host_arg $ port_arg $ workers_arg $ queue_arg
      $ default_deadline_arg $ max_deadline_arg $ cache_arg $ max_body_arg
      $ read_timeout_arg $ serve_faults_arg)

let main_cmd =
  let doc = "MILP-based aging-aware floorplanner for multi-context CGRRAs" in
  Cmd.group (Cmd.info "agingfp" ~version:"1.0.0" ~doc)
    [
      list_cmd; mttf_cmd; remap_cmd; suite_cmd; heatmap_cmd; related_cmd; export_lp_cmd;
      route_cmd; lint_cmd; serve_cmd;
    ]

(* Exit codes of the structured fatal handler; 1/2 stay cmdliner's
   "command failed" / "CLI usage error". *)
let exit_invariant = 3
let exit_parse = 4
let exit_sys = 5

let fatal code kind msg =
  Printf.eprintf "agingfp: fatal %s [benchmark=%s phase=%s]: %s\n" kind !diag_benchmark
    !diag_phase msg;
  exit code

let () =
  (* [~catch:false] so escaping exceptions reach this handler instead
     of cmdliner's backtrace printer: a one-line structured diagnostic
     with a distinct exit code per failure class. *)
  try exit (Cmd.eval' ~catch:false main_cmd) with
  | Agingfp_util.Invariant.Violation msg ->
    fatal exit_invariant "invariant-violation" msg
  | Serial.Parse_error (line, msg) ->
    fatal exit_parse "parse-error" (Printf.sprintf "line %d: %s" line msg)
  | Sys_error msg -> fatal exit_sys "system-error" msg
