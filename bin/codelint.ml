(* codelint — run the Lintcode rules over the repo's own sources.

     codelint [--json] [--baseline FILE] [--write-baseline FILE] PATH...

   Each PATH is a .ml file or a directory scanned recursively (hidden
   directories and _build are skipped). Exit 0 when no unwaived finding
   survives, 1 otherwise, 2 on usage/IO errors.

   The baseline file is line-oriented (rule<TAB>file<TAB>message), one
   line per finding, so a dirty tree can record today's debt with
   --write-baseline and later runs with --baseline only fail on NEW
   findings. Line numbers are deliberately not part of the key: edits
   above a finding must not churn the baseline. *)

let usage =
  "usage: codelint [--json] [--baseline FILE] [--write-baseline FILE] PATH..."

let json = ref false
let baseline = ref ""
let write_baseline = ref ""
let paths = ref []

let spec =
  [
    ("--json", Arg.Set json, " machine-readable output");
    ( "--baseline",
      Arg.Set_string baseline,
      "FILE only report findings absent from FILE" );
    ( "--write-baseline",
      Arg.Set_string write_baseline,
      "FILE record current findings to FILE and exit 0" );
  ]

(* Gather .ml files under [path], sorted: codelint's own det-order rule
   applies to readdir order too. *)
let rec gather acc path =
  let base = Filename.basename path in
  if String.length base > 0 && base.[0] = '.' && String.length path > 1 then acc
  else if Sys.is_directory path then
    if base = "_build" then acc
    else
      Array.fold_left
        (fun acc entry -> gather acc (Filename.concat path entry))
        acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let finding_key (f : Agingfp_lintcode.Lintcode.finding) =
  Printf.sprintf "%s\t%s\t%s" f.rule f.file f.message

let load_baseline file =
  let counts = Hashtbl.create 64 in
  let ic = open_in file in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         Hashtbl.replace counts line
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts line))
     done
   with End_of_file -> ());
  close_in ic;
  counts

let () =
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let roots = List.rev !paths in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "codelint: no such path: %s\n" p;
        exit 2
      end)
    roots;
  let files = List.sort compare (List.fold_left gather [] roots) in
  let findings =
    List.concat_map (fun f -> Agingfp_lintcode.Lintcode.lint_file f) files
  in
  if !write_baseline <> "" then begin
    let oc = open_out !write_baseline in
    List.iter (fun f -> output_string oc (finding_key f ^ "\n")) findings;
    close_out oc;
    Printf.printf "codelint: wrote %d finding(s) to %s\n" (List.length findings)
      !write_baseline;
    exit 0
  end;
  let findings =
    if !baseline = "" then findings
    else begin
      if not (Sys.file_exists !baseline) then begin
        Printf.eprintf "codelint: baseline file not found: %s\n" !baseline;
        exit 2
      end;
      let counts = load_baseline !baseline in
      (* Multiset subtraction: each baseline line absorbs one matching
         finding; anything beyond the recorded count is new. *)
      List.filter
        (fun f ->
          let key = finding_key f in
          match Hashtbl.find_opt counts key with
          | Some n when n > 0 ->
            Hashtbl.replace counts key (n - 1);
            false
          | _ -> true)
        findings
    end
  in
  if !json then
    print_endline
      (Agingfp_lintcode.Json.to_string
         (Agingfp_lintcode.Lintcode.findings_json findings))
  else begin
    List.iter
      (fun f ->
        Format.printf "%a@." Agingfp_lintcode.Lintcode.pp_finding f)
      findings;
    Printf.printf "codelint: %d file(s), %d finding(s)%s\n" (List.length files)
      (List.length findings)
      (if !baseline <> "" then " not in baseline" else "")
  end;
  exit (if findings = [] then 0 else 1)
